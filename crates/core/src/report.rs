//! Run reports in the units the paper uses.
//!
//! Table 1 reports per-program columns in *PE instruction times*; this
//! module derives them from the machine's cycle-denominated counters.

use std::fmt;
use std::time::Duration;

use ultra_net::stats::NetStats;
use ultra_obs::HeatmapSnapshot;
use ultra_pe::stats::PeStats;
use ultra_sim::clock::TimeScale;
use ultra_sim::Cycle;

use crate::engine::EngineMode;
use crate::machine::{FaultSummary, Machine};

/// Summary of one machine run, in the paper's units.
#[derive(Debug, Clone)]
pub struct MachineReport {
    /// Cycles the run took.
    pub cycles: Cycle,
    /// All PEs' counters merged.
    pub pe: PeStats,
    /// Aggregate network counters (zero for the ideal backend).
    pub net: NetStats,
    /// The machine's time scale, for unit conversion.
    pub time: TimeScale,
    /// Number of PEs.
    pub pes: usize,
    /// Resilience counters (all zero on a healthy run).
    pub faults: FaultSummary,
    /// Wall-clock duration of the run (`None` if the machine never ran).
    pub elapsed: Option<Duration>,
    /// The cycle engine that produced the run.
    pub engine: EngineMode,
    /// Whether the engine's thread count was chosen by the automatic
    /// size-based heuristic rather than pinned by the caller.
    pub engine_auto: bool,
    /// Logical cores the host advertises — what the automatic heuristic
    /// clamps its thread cap to. Printed alongside `(auto)` in the
    /// footer so a report records *why* the engine got its width.
    pub host_cores: usize,
    /// Cycles the engine skipped via idle fast-forward (still included
    /// in [`MachineReport::cycles`]).
    pub fast_forwarded: Cycle,
    /// Whether idle fast-forward was enabled — distinguishes "on but
    /// never fired" (printed as 0 cycles) from "off" (not printed).
    pub fast_forward_enabled: bool,
    /// Hot-spot heatmap of the fabric, populated when the machine ran
    /// with telemetry enabled (and has a network backend). Rendered in
    /// the Display footer.
    pub heatmap: Option<HeatmapSnapshot>,
}

impl MachineReport {
    /// Builds the report from a finished machine.
    #[must_use]
    pub fn from_machine(m: &Machine) -> Self {
        Self::from_machine_active(m, m.pes())
    }

    /// Builds the report over only the first `active` PEs — the §4.2
    /// setting where a handful of busy PEs sit in a larger fabric.
    ///
    /// # Panics
    ///
    /// Panics if `active` exceeds the PE count.
    #[must_use]
    pub fn from_machine_active(m: &Machine, active: usize) -> Self {
        Self {
            cycles: m.now(),
            pe: m.merged_pe_stats_range(0..active),
            net: m.net_stats(),
            time: m.cfg().time,
            pes: active,
            faults: m.fault_summary(),
            elapsed: m.last_run_elapsed(),
            engine: m.engine_mode(),
            engine_auto: m.auto_threads(),
            host_cores: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            fast_forwarded: m.fast_forwarded_cycles(),
            fast_forward_enabled: m.cfg().fast_forward,
            // Default-off: the footer (and harness stdout) only grows a
            // heatmap when the run opted into telemetry.
            heatmap: m.telemetry().is_enabled().then(|| m.heatmap()).flatten(),
        }
    }

    /// Drops the wall-clock measurement so [`MachineReport`]'s `Display`
    /// output is byte-reproducible across runs — for harnesses whose
    /// captured output is diffed between invocations (the repro suite),
    /// where a timing footer would be the only nondeterministic line.
    #[must_use]
    pub fn without_wall_clock(mut self) -> Self {
        self.elapsed = None;
        self
    }

    /// Simulated cycles per wall-clock second (`None` before a run or
    /// for a zero-length run).
    #[must_use]
    pub fn cycles_per_sec(&self) -> Option<f64> {
        let secs = self.elapsed?.as_secs_f64();
        (secs > 0.0).then(|| self.cycles as f64 / secs)
    }

    /// A canonical digest of everything the simulation computed —
    /// cycles, merged PE statistics, network statistics and fault
    /// summary, but *not* wall-clock time or engine mode. Two runs are
    /// bit-identical exactly when their parity strings are equal; the
    /// engine-parity tests compare sequential and parallel runs this
    /// way.
    #[must_use]
    pub fn parity_string(&self) -> String {
        format!(
            "cycles={};pe={:?};net={:?};faults={:?}",
            self.cycles, self.pe, self.net, self.faults
        )
    }

    /// Table 1 column 1: average central-memory access time, in PE
    /// instruction times.
    #[must_use]
    pub fn avg_cm_access_instr(&self) -> f64 {
        self.time.cycles_to_instructions(1) * self.pe.cm_access.mean()
    }

    /// Table 1 column 2: percentage of cycles PEs sat idle waiting on
    /// memory (barrier waits excluded, matching the §4.2 note that idle
    /// cycles are "waiting for a memory reference to be satisfied").
    #[must_use]
    pub fn idle_pct(&self) -> f64 {
        let total = self.pe.total_cycles;
        if total == 0 {
            return 0.0;
        }
        100.0 * self.pe.memory_idle_cycles() as f64 / total as f64
    }

    /// Table 1 column 3: idle cycles per central-memory load, in PE
    /// instruction times.
    #[must_use]
    pub fn idle_per_cm_load_instr(&self) -> f64 {
        let loads = self.pe.cm_loads.get();
        if loads == 0 {
            return 0.0;
        }
        self.time.cycles_to_instructions(1) * self.pe.memory_idle_cycles() as f64 / loads as f64
    }

    /// Table 1 column 4: memory references per instruction.
    #[must_use]
    pub fn mem_refs_per_instr(&self) -> f64 {
        self.pe.mem_refs_per_instruction()
    }

    /// Table 1 column 5: shared references per instruction.
    #[must_use]
    pub fn shared_refs_per_instr(&self) -> f64 {
        self.pe.shared_refs_per_instruction()
    }

    /// Offered network load in messages per PE per network cycle (the
    /// analytic model's `p`).
    #[must_use]
    pub fn traffic_intensity(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.pe.shared_refs.get() as f64 / (self.pes as f64 * self.cycles as f64)
    }

    /// Run time in PE instruction times.
    #[must_use]
    pub fn instruction_times(&self) -> f64 {
        self.time.cycles_to_instructions(self.cycles)
    }
}

impl fmt::Display for MachineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} PEs, {} cycles ({:.0} instruction times)",
            self.pes,
            self.cycles,
            self.instruction_times()
        )?;
        writeln!(
            f,
            "  avg CM access {:.2} instr | idle {:.0}% | idle/CM-load {:.1} | mem-ref/instr {:.2} | shared-ref/instr {:.3}",
            self.avg_cm_access_instr(),
            self.idle_pct(),
            self.idle_per_cm_load_instr(),
            self.mem_refs_per_instr(),
            self.shared_refs_per_instr()
        )?;
        write!(
            f,
            "  net: {} injected, {} combines ({:.1}%), {} drops",
            self.net.injected_requests,
            self.net.combines,
            100.0 * self.net.combine_rate(),
            self.net.drops
        )?;
        write!(
            f,
            "\n  latency p50/p90/p99: fwd {}/{}/{} | rev {}/{}/{} | round-trip {}/{}/{} cycles",
            self.net.forward_transit.p50(),
            self.net.forward_transit.p90(),
            self.net.forward_transit.p99(),
            self.net.reverse_transit.p50(),
            self.net.reverse_transit.p90(),
            self.net.reverse_transit.p99(),
            self.pe.cm_access.p50(),
            self.pe.cm_access.p90(),
            self.pe.cm_access.p99(),
        )?;
        if self.faults.any() {
            write!(
                f,
                "\n  faults: {} refused, {} failovers, {} lost, {} retries, {} dedup hits, {} dup replies, {} dead-MM discards, {} unroutable, {} dead PEs",
                self.faults.refusals,
                self.faults.failovers,
                self.faults.dropped,
                self.faults.retries,
                self.faults.dedup_hits,
                self.faults.duplicate_replies,
                self.faults.dead_discards,
                self.faults.unroutable,
                self.faults.deconfigured_pes
            )?;
        }
        if let Some(elapsed) = self.elapsed {
            write!(f, "\n  engine: {}", self.engine)?;
            if self.engine_auto {
                write!(f, " (auto; {}-core host)", self.host_cores)?;
            }
            write!(f, " | {:.3} s wall", elapsed.as_secs_f64())?;
            if let Some(cps) = self.cycles_per_sec() {
                write!(f, " | {cps:.0} cycles/s")?;
            }
            if self.fast_forward_enabled {
                write!(f, " | fast-forward: {} cycles", self.fast_forwarded)?;
            }
        }
        if let Some(heatmap) = &self.heatmap {
            write!(f, "\n  hot-spot heatmap:")?;
            for line in heatmap.render_ascii(64).lines() {
                write!(f, "\n{line}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineBuilder;
    use crate::program::{body, Expr, Op, Program};

    #[test]
    fn report_units_are_consistent() {
        let p = Program::new(
            body(vec![
                Op::Compute(10),
                Op::Load {
                    addr: Expr::PeIndex,
                    dst: 0,
                },
                Op::Store {
                    addr: Expr::add(Expr::Const(100), Expr::PeIndex),
                    value: Expr::Reg(0),
                },
                Op::Halt,
            ]),
            vec![],
        );
        let mut m = MachineBuilder::new(8).build_spmd(&p);
        assert!(m.run().completed);
        let r = MachineReport::from_machine(&m);
        assert!(r.cycles > 0);
        assert!(r.avg_cm_access_instr() >= 4.0, "round trips take cycles");
        assert!(r.mem_refs_per_instr() > 0.0);
        assert!(r.shared_refs_per_instr() <= r.mem_refs_per_instr());
        assert!((0.0..=100.0).contains(&r.idle_pct()));
        let text = r.to_string();
        assert!(text.contains("avg CM access"));
        assert!(text.contains("engine: "), "footer names the engine");
        assert!(
            text.contains("(auto;") && text.contains("-core host)"),
            "default builds report the automatic engine choice and the host width it clamped to: {text}"
        );
        assert!(text.contains("cycles/s"), "footer reports throughput");
        assert!(r.elapsed.is_some());
        assert!(r.cycles_per_sec().unwrap_or(0.0) > 0.0);
    }

    #[test]
    fn display_surfaces_latency_percentiles() {
        let p = Program::new(
            body(vec![
                Op::Load {
                    addr: Expr::PeIndex,
                    dst: 0,
                },
                Op::Halt,
            ]),
            vec![],
        );
        let mut m = MachineBuilder::new(8).build_spmd(&p);
        assert!(m.run().completed);
        let text = MachineReport::from_machine(&m).to_string();
        assert!(
            text.contains("latency p50/p90/p99"),
            "percentile line missing: {text}"
        );
        assert!(text.contains("round-trip"));
    }

    #[test]
    fn footer_prints_fast_forward_only_when_enabled() {
        let p = Program::new(body(vec![Op::Compute(3), Op::Halt]), vec![]);
        let run = |ff: bool| {
            let mut m = MachineBuilder::new(4).fast_forward(ff).build_spmd(&p);
            assert!(m.run().completed);
            MachineReport::from_machine(&m).to_string()
        };
        let on = run(true);
        assert!(
            on.contains("fast-forward:"),
            "enabled fast-forward must be reported even at 0 skipped cycles: {on}"
        );
        let off = run(false);
        assert!(
            !off.contains("fast-forward"),
            "disabled fast-forward must not appear: {off}"
        );
    }

    #[test]
    fn heatmap_appears_only_with_telemetry() {
        let p = Program::new(
            body(vec![
                Op::FetchAdd {
                    addr: Expr::Const(0),
                    delta: Expr::Const(1),
                    dst: None,
                },
                Op::Halt,
            ]),
            vec![],
        );
        let mut plain = MachineBuilder::new(8).build_spmd(&p);
        assert!(plain.run().completed);
        let text = MachineReport::from_machine(&plain).to_string();
        assert!(!text.contains("hot-spot heatmap"));

        let mut observed = MachineBuilder::new(8).build_spmd(&p);
        observed.enable_telemetry(16, 1024);
        assert!(observed.run().completed);
        let text = MachineReport::from_machine(&observed).to_string();
        assert!(
            text.contains("hot-spot heatmap"),
            "telemetry adds the footer"
        );
        assert!(text.contains("combines (per switch"));
    }

    #[test]
    fn parity_string_excludes_wall_clock() {
        let p = Program::new(
            body(vec![
                Op::FetchAdd {
                    addr: Expr::Const(0),
                    delta: Expr::Const(1),
                    dst: None,
                },
                Op::Halt,
            ]),
            vec![],
        );
        let run = || {
            let mut m = MachineBuilder::new(4).build_spmd(&p);
            assert!(m.run().completed);
            MachineReport::from_machine(&m)
        };
        let (a, b) = (run(), run());
        assert_ne!(a.elapsed, None);
        assert_eq!(
            a.parity_string(),
            b.parity_string(),
            "identical configs must digest identically despite differing wall time"
        );
    }
}

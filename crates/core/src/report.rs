//! Run reports in the units the paper uses.
//!
//! Table 1 reports per-program columns in *PE instruction times*; this
//! module derives them from the machine's cycle-denominated counters.

use std::fmt;

use ultra_net::stats::NetStats;
use ultra_pe::stats::PeStats;
use ultra_sim::clock::TimeScale;
use ultra_sim::Cycle;

use crate::machine::{FaultSummary, Machine};

/// Summary of one machine run, in the paper's units.
#[derive(Debug, Clone)]
pub struct MachineReport {
    /// Cycles the run took.
    pub cycles: Cycle,
    /// All PEs' counters merged.
    pub pe: PeStats,
    /// Aggregate network counters (zero for the ideal backend).
    pub net: NetStats,
    /// The machine's time scale, for unit conversion.
    pub time: TimeScale,
    /// Number of PEs.
    pub pes: usize,
    /// Resilience counters (all zero on a healthy run).
    pub faults: FaultSummary,
}

impl MachineReport {
    /// Builds the report from a finished machine.
    #[must_use]
    pub fn from_machine(m: &Machine) -> Self {
        Self::from_machine_active(m, m.pes())
    }

    /// Builds the report over only the first `active` PEs — the §4.2
    /// setting where a handful of busy PEs sit in a larger fabric.
    ///
    /// # Panics
    ///
    /// Panics if `active` exceeds the PE count.
    #[must_use]
    pub fn from_machine_active(m: &Machine, active: usize) -> Self {
        Self {
            cycles: m.now(),
            pe: m.merged_pe_stats_range(0..active),
            net: m.net_stats(),
            time: m.cfg().time,
            pes: active,
            faults: m.fault_summary(),
        }
    }

    /// Table 1 column 1: average central-memory access time, in PE
    /// instruction times.
    #[must_use]
    pub fn avg_cm_access_instr(&self) -> f64 {
        self.time.cycles_to_instructions(1) * self.pe.cm_access.mean()
    }

    /// Table 1 column 2: percentage of cycles PEs sat idle waiting on
    /// memory (barrier waits excluded, matching the §4.2 note that idle
    /// cycles are "waiting for a memory reference to be satisfied").
    #[must_use]
    pub fn idle_pct(&self) -> f64 {
        let total = self.pe.total_cycles;
        if total == 0 {
            return 0.0;
        }
        100.0 * self.pe.memory_idle_cycles() as f64 / total as f64
    }

    /// Table 1 column 3: idle cycles per central-memory load, in PE
    /// instruction times.
    #[must_use]
    pub fn idle_per_cm_load_instr(&self) -> f64 {
        let loads = self.pe.cm_loads.get();
        if loads == 0 {
            return 0.0;
        }
        self.time.cycles_to_instructions(1) * self.pe.memory_idle_cycles() as f64 / loads as f64
    }

    /// Table 1 column 4: memory references per instruction.
    #[must_use]
    pub fn mem_refs_per_instr(&self) -> f64 {
        self.pe.mem_refs_per_instruction()
    }

    /// Table 1 column 5: shared references per instruction.
    #[must_use]
    pub fn shared_refs_per_instr(&self) -> f64 {
        self.pe.shared_refs_per_instruction()
    }

    /// Offered network load in messages per PE per network cycle (the
    /// analytic model's `p`).
    #[must_use]
    pub fn traffic_intensity(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.pe.shared_refs.get() as f64 / (self.pes as f64 * self.cycles as f64)
    }

    /// Run time in PE instruction times.
    #[must_use]
    pub fn instruction_times(&self) -> f64 {
        self.time.cycles_to_instructions(self.cycles)
    }
}

impl fmt::Display for MachineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} PEs, {} cycles ({:.0} instruction times)",
            self.pes,
            self.cycles,
            self.instruction_times()
        )?;
        writeln!(
            f,
            "  avg CM access {:.2} instr | idle {:.0}% | idle/CM-load {:.1} | mem-ref/instr {:.2} | shared-ref/instr {:.3}",
            self.avg_cm_access_instr(),
            self.idle_pct(),
            self.idle_per_cm_load_instr(),
            self.mem_refs_per_instr(),
            self.shared_refs_per_instr()
        )?;
        write!(
            f,
            "  net: {} injected, {} combines ({:.1}%), {} drops",
            self.net.injected_requests,
            self.net.combines,
            100.0 * self.net.combine_rate(),
            self.net.drops
        )?;
        if self.faults.any() {
            write!(
                f,
                "\n  faults: {} refused, {} failovers, {} lost, {} retries, {} dedup hits, {} dup replies, {} dead-MM discards, {} unroutable, {} dead PEs",
                self.faults.refusals,
                self.faults.failovers,
                self.faults.dropped,
                self.faults.retries,
                self.faults.dedup_hits,
                self.faults.duplicate_replies,
                self.faults.dead_discards,
                self.faults.unroutable,
                self.faults.deconfigured_pes
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineBuilder;
    use crate::program::{body, Expr, Op, Program};

    #[test]
    fn report_units_are_consistent() {
        let p = Program::new(
            body(vec![
                Op::Compute(10),
                Op::Load {
                    addr: Expr::PeIndex,
                    dst: 0,
                },
                Op::Store {
                    addr: Expr::add(Expr::Const(100), Expr::PeIndex),
                    value: Expr::Reg(0),
                },
                Op::Halt,
            ]),
            vec![],
        );
        let mut m = MachineBuilder::new(8).build_spmd(&p);
        assert!(m.run().completed);
        let r = MachineReport::from_machine(&m);
        assert!(r.cycles > 0);
        assert!(r.avg_cm_access_instr() >= 4.0, "round trips take cycles");
        assert!(r.mem_refs_per_instr() > 0.0);
        assert!(r.shared_refs_per_instr() <= r.mem_refs_per_instr());
        assert!((0.0..=100.0).contains(&r.idle_pct()));
        let text = r.to_string();
        assert!(text.contains("avg CM access"));
    }
}

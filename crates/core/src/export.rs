//! Perfetto/Chrome trace export for machine runs.
//!
//! Converts everything a [`Machine`] recorded — the event [`crate::trace`],
//! the engine's wall-clock phase spans, and the cycle-windowed telemetry
//! series — into one Chrome `trace_event` JSON document that loads directly
//! in `ui.perfetto.dev` or `chrome://tracing`. Three process-track groups
//! keep the two time bases apart:
//!
//! * **pid 1 "machine"** — simulated time, one cycle rendered as one
//!   microsecond. Each virtual PE is a thread track; replies become
//!   duration spans covering their round trip, issues and halts become
//!   instants.
//! * **pid 2 "engine"** — host wall-clock time in real microseconds. One
//!   thread track per [`EnginePhase`]; worker-pool fan-out rides along as a
//!   counter.
//! * **pid 3 "telemetry"** — counter tracks sampled at window boundaries
//!   (simulated time again), mirroring the [`TimeSeries`] the machine
//!   recorded.
//!
//! [`TimeSeries`]: ultra_obs::TimeSeries

use ultra_net::message::MsgKind;
use ultra_obs::{ChromeTraceBuilder, EnginePhase};

use crate::machine::Machine;
use crate::trace::TraceEvent;

/// Process id of the simulated-machine track group (1 cycle = 1 µs).
pub const PID_MACHINE: u64 = 1;
/// Process id of the engine wall-clock track group.
pub const PID_ENGINE: u64 = 2;
/// Process id of the telemetry counter track group.
pub const PID_TELEMETRY: u64 = 3;

fn issue_name(kind: MsgKind) -> &'static str {
    match kind {
        MsgKind::Load => "issue load",
        MsgKind::Store => "issue store",
        MsgKind::FetchPhi(_) => "issue fetch-and-phi",
    }
}

/// Renders the machine's recorded observability state as a Chrome
/// `trace_event` JSON array.
///
/// Sections whose recorder was never enabled simply contribute no events;
/// the result is always a valid (possibly metadata-only) trace.
#[must_use]
pub fn chrome_trace(m: &Machine) -> String {
    let mut b = ChromeTraceBuilder::new();
    b.process_name(PID_MACHINE, "machine (1 cycle = 1us)");
    b.process_name(PID_ENGINE, "engine (wall clock)");
    b.process_name(PID_TELEMETRY, "telemetry (per window)");
    for phase in [
        EnginePhase::Flush,
        EnginePhase::Network,
        EnginePhase::MemBanks,
        EnginePhase::PeShards,
    ] {
        b.thread_name(PID_ENGINE, phase.track(), phase.name());
    }

    for event in m.trace().events() {
        match *event {
            TraceEvent::Issue {
                cycle, pe, kind, ..
            } => b.instant(issue_name(kind), PID_MACHINE, pe.0 as u64, cycle as f64),
            TraceEvent::Reply { cycle, pe, latency } => b.complete(
                "mem round-trip",
                PID_MACHINE,
                pe.0 as u64,
                cycle.saturating_sub(latency) as f64,
                latency as f64,
            ),
            TraceEvent::BarrierRelease { cycle, generation } => b.instant(
                &format!("barrier release (gen {generation})"),
                PID_MACHINE,
                0,
                cycle as f64,
            ),
            TraceEvent::Halt { cycle, pe } => {
                b.instant("halt", PID_MACHINE, pe.0 as u64, cycle as f64);
            }
        }
    }

    for span in m.phase_spans().spans() {
        let ts = span.start_ns as f64 / 1000.0;
        b.complete(
            span.phase.name(),
            PID_ENGINE,
            span.phase.track(),
            ts,
            span.dur_ns as f64 / 1000.0,
        );
        if span.pool_chunks > 0 {
            b.counter(
                "pool chunks",
                PID_ENGINE,
                ts,
                &[(span.phase.name(), f64::from(span.pool_chunks))],
            );
        }
    }

    for sample in m.telemetry().samples() {
        let ts = (sample.start + sample.len) as f64;
        let counters: Vec<(&str, f64)> = sample
            .counters
            .fields()
            .iter()
            .map(|&(k, v)| (k, v as f64))
            .collect();
        b.counter("window rates", PID_TELEMETRY, ts, &counters);
        let gauges: Vec<(&str, f64)> = sample
            .gauges
            .fields()
            .iter()
            .map(|&(k, v)| (k, v as f64))
            .collect();
        b.counter("gauges", PID_TELEMETRY, ts, &gauges);
    }

    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineBuilder;
    use crate::program::{body, Expr, Op, Program};

    fn contended_program() -> Program {
        Program::new(
            body(vec![
                Op::FetchAdd {
                    addr: Expr::Const(0),
                    delta: Expr::Const(1),
                    dst: Some(0),
                },
                Op::Halt,
            ]),
            vec![],
        )
    }

    #[test]
    fn trace_without_recorders_is_metadata_only() {
        let mut m = MachineBuilder::new(4).build_spmd(&contended_program());
        assert!(m.run().completed);
        let text = chrome_trace(&m);
        assert!(text.starts_with("[\n"));
        assert!(text.contains("process_name"));
        assert!(!text.contains("\"ph\": \"X\""));
        assert!(!text.contains("\"ph\": \"C\""));
    }

    #[test]
    fn full_recording_produces_all_three_track_groups() {
        let mut m = MachineBuilder::new(8).build_spmd(&contended_program());
        m.enable_trace(4096);
        m.enable_telemetry(8, 1024);
        m.enable_phase_spans(65536);
        assert!(m.run().completed);
        let text = chrome_trace(&m);
        assert!(text.contains("mem round-trip"));
        assert!(text.contains("issue fetch-and-phi"));
        assert!(text.contains("\"name\": \"halt\""));
        assert!(text.contains("window rates"));
        assert!(text.contains("pe-shards"));
        // Reply spans must start at cycle - latency, never negative.
        assert!(!text.contains("\"ts\": -"));
    }
}

//! Versioned, deterministic [`Machine`] snapshots.
//!
//! [`Machine::snapshot`] serializes the *complete* simulation state —
//! interpreter frames, PNI retry timers, in-flight network messages,
//! memory words, fault clocks, rng streams — into a self-contained,
//! version-stamped byte vector; [`Machine::restore`] reassembles a
//! machine that is bit-identical to the donor. The contract, enforced by
//! the `snapshot_roundtrip` property tests, is:
//!
//! > `run(k)` → `snapshot` → `restore` → `run(m)` produces exactly the
//! > state (and [`MachineReport::parity_string`]) of `run(k + m)`,
//! > on every engine (sequential, parallel, fast-forward).
//!
//! # Format
//!
//! ```text
//! magic      8 bytes  b"ULTRASNP"
//! format     u32      SNAPSHOT_FORMAT_VERSION
//! crate      str      CARGO_PKG_VERSION of the writer
//! config     bytes    length-prefixed config-identity echo (geometry,
//!                     backend, time scale, translation, seed, budget,
//!                     barrier parties, contexts, fault plan)
//! tuning     fixed    speed knobs (threads, auto, sweep, fast-forward)
//! state      ...      full machine state (see machine.rs)
//! digest     u64      FNV-1a of the donor's parity string
//! ```
//!
//! Everything before `state` is validated with typed errors before any
//! state is decoded; the trailing digest is recomputed from the restored
//! machine and compared, so any corruption that survives structural
//! validation is still caught. All failures are [`SnapshotError`]s —
//! corrupt or hostile bytes never panic and never allocate unboundedly.
//!
//! # What is *not* in a snapshot
//!
//! Observational state — the event trace, cycle-windowed telemetry and
//! wall-clock phase spans — is excluded: a restored machine starts with
//! those disabled, exactly like a freshly built one. They never feed
//! back into the simulation, so their absence cannot perturb parity.
//!
//! The engine speed knobs ride along as a *tuning echo* (so a plain
//! restore reproduces the donor's engine) but are excluded from the
//! config identity: [`Machine::restore_tuned`] may override them, since
//! every setting is bit-identical by construction.

use std::fmt;

use ultra_net::config::SweepMode;
use ultra_sim::wire::{fnv1a, WireError, WireReader, WireWriter};

use crate::machine::{Machine, MachineConfig, StateDecodeError};
use crate::report::MachineReport;

/// Leading magic of every snapshot.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"ULTRASNP";

/// Current snapshot format version. Bumped on any layout change; old
/// formats are rejected with [`SnapshotError::UnsupportedVersion`]
/// rather than misread.
pub const SNAPSHOT_FORMAT_VERSION: u32 = 1;

/// The crate version stamped into (and required of) every snapshot.
/// State layout follows crate internals, so restore demands an exact
/// match rather than guessing at cross-version compatibility.
pub const SNAPSHOT_CRATE_VERSION: &str = env!("CARGO_PKG_VERSION");

/// Why a snapshot could not be restored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The bytes do not start with [`SNAPSHOT_MAGIC`] — not a snapshot.
    BadMagic,
    /// The snapshot was written by an unknown format revision.
    UnsupportedVersion {
        /// The format version found in the header.
        found: u32,
    },
    /// The snapshot was written by a different crate version.
    CrateVersionMismatch {
        /// Version that wrote the snapshot.
        snapshot: String,
        /// Version attempting the restore.
        running: &'static str,
    },
    /// The state payload disagrees with the config echo it was framed
    /// with (wrong shard count, backend kind, network geometry, …).
    ConfigMismatch {
        /// Which invariant failed.
        what: &'static str,
    },
    /// The bytes are structurally invalid (truncated, bad tag, bad
    /// length prefix).
    Corrupted(WireError),
    /// The restored machine's parity digest does not match the digest
    /// the donor recorded — the state decoded but is not the donor's.
    DigestMismatch {
        /// Digest recorded in the snapshot.
        expected: u64,
        /// Digest recomputed from the restored state.
        found: u64,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadMagic => write!(f, "not a machine snapshot (bad magic)"),
            Self::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported snapshot format {found} (this build reads \
                     {SNAPSHOT_FORMAT_VERSION})"
                )
            }
            Self::CrateVersionMismatch { snapshot, running } => {
                write!(
                    f,
                    "snapshot written by crate version {snapshot}, running {running}"
                )
            }
            Self::ConfigMismatch { what } => {
                write!(f, "snapshot state disagrees with its config echo: {what}")
            }
            Self::Corrupted(e) => write!(f, "corrupted snapshot: {e}"),
            Self::DigestMismatch { expected, found } => {
                write!(
                    f,
                    "snapshot parity digest mismatch: recorded {expected:#018x}, \
                     restored state digests to {found:#018x}"
                )
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Corrupted(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for SnapshotError {
    fn from(e: WireError) -> Self {
        Self::Corrupted(e)
    }
}

impl From<StateDecodeError> for SnapshotError {
    fn from(e: StateDecodeError) -> Self {
        match e {
            StateDecodeError::Wire(w) => Self::Corrupted(w),
            StateDecodeError::ConfigMismatch(what) => Self::ConfigMismatch { what },
        }
    }
}

/// Engine speed-knob overrides for [`Machine::restore_tuned`]. Every
/// field is a pure speed choice — all settings are bit-identical — so a
/// snapshot taken under one engine may resume under another. `None`
/// keeps the donor machine's setting from the tuning echo.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineTuning {
    /// Worker-thread budget (`Some(1)` forces the sequential engine).
    pub threads: Option<usize>,
    /// Switch-sweep strategy for the network fabric.
    pub sweep: Option<SweepMode>,
    /// Idle-cycle fast-forward on or off.
    pub fast_forward: Option<bool>,
}

/// The parity digest a snapshot carries: FNV-1a over the canonical
/// parity string of the machine's observable state.
fn parity_digest(m: &Machine) -> u64 {
    fnv1a(MachineReport::from_machine(m).parity_string().as_bytes())
}

impl Machine {
    /// Serializes the machine into a self-contained, version-stamped
    /// snapshot. Deterministic: equal machine states yield equal bytes.
    #[must_use]
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.raw(&SNAPSHOT_MAGIC);
        w.u32(SNAPSHOT_FORMAT_VERSION);
        w.str(SNAPSHOT_CRATE_VERSION);
        let mut cw = WireWriter::new();
        self.cfg().encode_identity(&mut cw);
        let cfg_bytes = cw.into_bytes();
        w.usize(cfg_bytes.len());
        w.raw(&cfg_bytes);
        self.cfg().encode_tuning(&mut w);
        self.encode_state(&mut w);
        w.u64(parity_digest(self));
        w.into_bytes()
    }

    /// Restores a machine from [`Machine::snapshot`] bytes, reproducing
    /// the donor's engine configuration.
    ///
    /// # Errors
    ///
    /// Every failure is a typed [`SnapshotError`]; corrupt, truncated or
    /// cross-version input never panics.
    pub fn restore(bytes: &[u8]) -> Result<Self, SnapshotError> {
        Self::restore_tuned(bytes, EngineTuning::default())
    }

    /// Restores a machine, overriding the donor's engine speed knobs
    /// with any `Some` fields of `tuning`. A sweep job can thus take a
    /// checkpoint under the parallel engine and resume it sequentially
    /// (or vice versa) with bit-identical results.
    ///
    /// # Errors
    ///
    /// Same contract as [`Machine::restore`].
    pub fn restore_tuned(bytes: &[u8], tuning: EngineTuning) -> Result<Self, SnapshotError> {
        let mut r = WireReader::new(bytes);
        let magic = r
            .take(SNAPSHOT_MAGIC.len())
            .map_err(|_| SnapshotError::BadMagic)?;
        if magic != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let found = r.u32()?;
        if found != SNAPSHOT_FORMAT_VERSION {
            return Err(SnapshotError::UnsupportedVersion { found });
        }
        let snapshot_version = r.str()?;
        if snapshot_version != SNAPSHOT_CRATE_VERSION {
            return Err(SnapshotError::CrateVersionMismatch {
                snapshot: snapshot_version,
                running: SNAPSHOT_CRATE_VERSION,
            });
        }
        let cfg_len = r.seq_len()?;
        let cfg_bytes = r.take(cfg_len)?;
        let mut cr = WireReader::new(cfg_bytes);
        let mut cfg = MachineConfig::decode_identity(&mut cr)?;
        if !cr.is_empty() {
            return Err(WireError::Invalid("config echo has trailing bytes").into());
        }
        cfg.decode_tuning_into(&mut r)?;
        if let Some(threads) = tuning.threads {
            cfg.threads = threads.max(1);
            cfg.auto_threads = false;
        }
        if let Some(sweep) = tuning.sweep {
            cfg.sweep = sweep;
        }
        if let Some(fast_forward) = tuning.fast_forward {
            cfg.fast_forward = fast_forward;
        }
        let machine = Machine::decode_state(cfg, &mut r)?;
        let expected = r.u64()?;
        if !r.is_empty() {
            return Err(WireError::Invalid("snapshot has trailing bytes").into());
        }
        let found = parity_digest(&machine);
        if found != expected {
            return Err(SnapshotError::DigestMismatch { expected, found });
        }
        Ok(machine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineBuilder;
    use crate::program::{body, Expr, Op, Program};

    fn ticket_program(rounds: i64) -> Program {
        Program::new(
            body(vec![
                Op::For {
                    reg: 1,
                    from: Expr::Const(0),
                    to: Expr::Const(rounds),
                    body: body(vec![
                        Op::FetchAdd {
                            addr: Expr::Const(0),
                            delta: Expr::Const(1),
                            dst: Some(0),
                        },
                        Op::Store {
                            addr: Expr::add(Expr::mul(Expr::PeIndex, 64), Expr::Reg(1)),
                            value: Expr::Reg(0),
                        },
                    ]),
                },
                Op::Barrier,
                Op::Halt,
            ]),
            vec![],
        )
    }

    fn digest(m: &Machine) -> String {
        MachineReport::from_machine(m).parity_string()
    }

    /// A mid-run machine with traffic in flight.
    fn mid_run_machine() -> Machine {
        let mut m = MachineBuilder::new(8).build_spmd(&ticket_program(6));
        for _ in 0..40 {
            m.step();
        }
        m
    }

    #[test]
    fn snapshot_restore_is_bit_identical() {
        let mut m = mid_run_machine();
        let bytes = m.snapshot();
        let mut copy = Machine::restore(&bytes).unwrap();
        assert_eq!(digest(&m), digest(&copy));
        // Same bytes again: snapshotting is deterministic and read-only.
        assert_eq!(copy.snapshot(), bytes);
        // Both continue to the same completed state.
        let a = m.run();
        let b = copy.run();
        assert_eq!(a, b);
        assert_eq!(digest(&m), digest(&copy));
        assert_eq!(m.read_shared(0), copy.read_shared(0));
    }

    #[test]
    fn run_snapshot_resume_matches_uninterrupted_run() {
        let program = ticket_program(6);
        let mut oneshot = MachineBuilder::new(8).build_spmd(&program);
        assert!(oneshot.run().completed);

        let mut first = MachineBuilder::new(8).build_spmd(&program);
        let out = first.run_for(37);
        assert!(!out.completed, "37 cycles must not finish this workload");
        let mut resumed = Machine::restore(&first.snapshot()).unwrap();
        assert!(resumed.run().completed);
        assert_eq!(digest(&resumed), digest(&oneshot));
    }

    #[test]
    fn snapshot_cut_through_a_timed_wait_resumes_exactly() {
        // Park every PE on a long [`Op::WaitUntil`], cut the snapshot
        // while they sleep, and resume: the wake cycles stored afterward
        // must match an uninterrupted run exactly — the parked target is
        // simulation state ([`CtxState::WaitUntil`] on the wire), not
        // something re-derived at restore time.
        let program = Program::new(
            body(vec![
                Op::WaitUntil {
                    cycle: Expr::add(Expr::mul(Expr::PeIndex, 50), 300),
                },
                Op::Store {
                    addr: Expr::add(Expr::Const(500), Expr::PeIndex),
                    value: Expr::Clock,
                },
                Op::Halt,
            ]),
            vec![],
        );
        let mut oneshot = MachineBuilder::new(4).build_spmd(&program);
        assert!(oneshot.run().completed);

        let mut first = MachineBuilder::new(4).build_spmd(&program);
        let out = first.run_for(120);
        assert!(!out.completed, "every PE should still be asleep");
        let mut resumed = Machine::restore(&first.snapshot()).unwrap();
        assert!(resumed.run().completed);
        assert_eq!(digest(&resumed), digest(&oneshot));
        for pe in 0..4 {
            assert_eq!(
                resumed.read_shared(500 + pe),
                oneshot.read_shared(500 + pe),
                "PE {pe} woke at a different cycle after the resume"
            );
        }
    }

    #[test]
    fn run_on_a_completed_machine_is_a_fixed_point() {
        let mut m = MachineBuilder::new(8).build_spmd(&ticket_program(2));
        let first = m.run();
        assert!(first.completed);
        let before = digest(&m);
        let again = m.run();
        assert_eq!(again, first, "re-running a quiescent machine is a no-op");
        assert_eq!(digest(&m), before);
    }

    #[test]
    fn restore_tuned_overrides_are_bit_identical() {
        use ultra_net::config::SweepMode;
        let m = mid_run_machine();
        let bytes = m.snapshot();
        let plain = {
            let mut r = Machine::restore(&bytes).unwrap();
            r.run();
            digest(&r)
        };
        for tuning in [
            EngineTuning {
                threads: Some(2),
                ..EngineTuning::default()
            },
            EngineTuning {
                sweep: Some(SweepMode::Dense),
                ..EngineTuning::default()
            },
            EngineTuning {
                fast_forward: Some(false),
                ..EngineTuning::default()
            },
        ] {
            let mut r = Machine::restore_tuned(&bytes, tuning).unwrap();
            r.run();
            assert_eq!(digest(&r), plain, "{tuning:?} must be bit-identical");
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = mid_run_machine().snapshot();
        bytes[0] ^= 0xFF;
        assert_eq!(
            Machine::restore(&bytes).err(),
            Some(SnapshotError::BadMagic)
        );
        assert_eq!(
            Machine::restore(b"short").err(),
            Some(SnapshotError::BadMagic)
        );
    }

    #[test]
    fn unsupported_format_version_is_rejected() {
        let mut bytes = mid_run_machine().snapshot();
        // The u32 format version sits right after the 8-byte magic.
        bytes[8] = 0xEE;
        assert_eq!(
            Machine::restore(&bytes).err(),
            Some(SnapshotError::UnsupportedVersion { found: 0xEE })
        );
    }

    #[test]
    fn crate_version_mismatch_is_rejected() {
        let bytes = mid_run_machine().snapshot();
        // Re-frame the snapshot with a foreign writer version.
        let tail = 8 + 4 + 8 + SNAPSHOT_CRATE_VERSION.len();
        let mut forged = WireWriter::new();
        forged.raw(&SNAPSHOT_MAGIC);
        forged.u32(SNAPSHOT_FORMAT_VERSION);
        forged.str("0.0.0-elsewhere");
        forged.raw(&bytes[tail..]);
        assert_eq!(
            Machine::restore(&forged.into_bytes()).err(),
            Some(SnapshotError::CrateVersionMismatch {
                snapshot: "0.0.0-elsewhere".into(),
                running: SNAPSHOT_CRATE_VERSION,
            })
        );
    }

    #[test]
    fn config_mismatch_is_rejected() {
        // Splice the config echo of a 16-PE machine onto an 8-PE state.
        let small = mid_run_machine().snapshot();
        let big = MachineBuilder::new(16)
            .build_spmd(&ticket_program(2))
            .snapshot();
        let cfg_at = 8 + 4 + 8 + SNAPSHOT_CRATE_VERSION.len();
        let cfg_end = |b: &[u8]| {
            let len = u64::from_le_bytes(b[cfg_at..cfg_at + 8].try_into().unwrap()) as usize;
            cfg_at + 8 + len
        };
        let mut forged = small[..cfg_at].to_vec();
        forged.extend_from_slice(&big[cfg_at..cfg_end(&big)]);
        forged.extend_from_slice(&small[cfg_end(&small)..]);
        assert_eq!(
            Machine::restore(&forged).err(),
            Some(SnapshotError::ConfigMismatch {
                what: "PE shard count"
            })
        );
    }

    #[test]
    fn digest_mismatch_is_rejected() {
        let mut bytes = mid_run_machine().snapshot();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        assert!(matches!(
            Machine::restore(&bytes),
            Err(SnapshotError::DigestMismatch { .. })
        ));
    }

    #[test]
    fn corruption_is_an_error_never_a_panic() {
        let bytes = mid_run_machine().snapshot();
        // Every truncation fails cleanly.
        for cut in 0..bytes.len() {
            assert!(Machine::restore(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // Dropping bytes from the middle fails cleanly (typed, any class).
        let mut gouged = bytes.clone();
        gouged.drain(bytes.len() / 2..bytes.len() / 2 + 9);
        assert!(Machine::restore(&gouged).is_err());
        // Truncating just the digest is Corrupted, not a misread.
        assert!(matches!(
            Machine::restore(&bytes[..bytes.len() - 4]),
            Err(SnapshotError::Corrupted(_))
        ));
    }

    #[test]
    fn ideal_backend_snapshots_round_trip_too() {
        let mut m = MachineBuilder::new(8)
            .ideal(2)
            .build_spmd(&ticket_program(4));
        for _ in 0..10 {
            m.step();
        }
        let mut copy = Machine::restore(&m.snapshot()).unwrap();
        let a = m.run();
        let b = copy.run();
        assert_eq!(a, b);
        assert_eq!(digest(&m), digest(&copy));
        assert_eq!(m.read_shared(0), copy.read_shared(0));
    }
}

//! The per-PE program interpreter.
//!
//! [`PeInterp`] executes one [`crate::program::Program`] as a stream of
//! *fetch events*: each call to [`PeInterp::next_op`] advances the program
//! by one instruction-costed step and tells the machine what that step
//! needs — local work, a memory request, a barrier arrival, a fence — or
//! that the PE is blocked on a locked register (§3.5 register locking).
//!
//! The machine owns all timing: it charges the returned instruction counts
//! against the clock, carries the returned [`IssueSpec`]s through the PNI
//! and network, and calls [`PeInterp::write_and_unlock`] when replies
//! arrive. The interpreter is therefore backend-agnostic: the same program
//! runs unchanged on the ideal paracomputer and on the full network
//! machine.

use ultra_net::message::MsgKind;
use ultra_sim::wire::{Wire, WireError, WireReader, WireWriter};
use ultra_sim::{Cycle, PeId, Value};

use crate::program::{
    decode_body, encode_body, Body, EvalCtx, Expr, FrameLimitExceeded, Op, Program, Reg,
    MAX_DECODE_DEPTH, NUM_REGS,
};

/// What the PE's next instruction needs from the machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fetched {
    /// Local work: `instructions` instruction slots, of which
    /// `private_refs` are cache-satisfied memory references.
    Work {
        /// Instruction slots consumed.
        instructions: u32,
        /// How many were private (cached) memory references.
        private_refs: u32,
    },
    /// A shared-memory request (costs one instruction slot to issue).
    Issue(IssueSpec),
    /// Arrival at a barrier; the machine issues the barrier fetch-and-add
    /// and wakes the PE when every PE has arrived.
    Barrier,
    /// Wait until all of this PE's outstanding requests complete.
    Fence,
    /// The next instruction reads a locked register; no progress until its
    /// reply arrives.
    BlockedOnReg(Reg),
    /// Park until the machine clock reaches the given absolute cycle
    /// ([`Op::WaitUntil`]; the target was evaluated at fetch and the
    /// instruction consumed — waking resumes at the following one).
    SleepUntil(Cycle),
    /// The program has finished.
    Halted,
}

/// A memory request the interpreter wants issued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IssueSpec {
    /// Function indicator.
    pub kind: MsgKind,
    /// Flat virtual word address.
    pub vaddr: usize,
    /// Store datum / fetch operand.
    pub value: Value,
    /// Destination register for the reply value; locked by the caller via
    /// [`PeInterp::lock`] at issue time.
    pub dst: Option<Reg>,
}

impl Wire for IssueSpec {
    fn encode(&self, w: &mut WireWriter) {
        self.kind.encode(w);
        w.usize(self.vaddr);
        w.i64(self.value);
        self.dst.encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            kind: MsgKind::decode(r)?,
            vaddr: r.usize()?,
            value: r.i64()?,
            dst: decode_reg_opt(r)?,
        })
    }
}

/// Decodes an optional register index, bounds-checked against
/// [`NUM_REGS`].
fn decode_reg_opt(r: &mut WireReader<'_>) -> Result<Option<Reg>, WireError> {
    Option::<Reg>::decode(r)?
        .map(decode_reg_checked)
        .transpose()
}

fn decode_reg_checked(reg: Reg) -> Result<Reg, WireError> {
    if (reg as usize) < NUM_REGS {
        Ok(reg)
    } else {
        Err(WireError::Invalid("register index out of range"))
    }
}

#[derive(Debug, Clone)]
enum FrameCtl {
    Seq,
    For {
        reg: Reg,
        end: Value,
    },
    SelfSched {
        reg: Reg,
        counter: usize,
        limit: Value,
    },
}

const PC_AWAIT_CLAIM: usize = usize::MAX;

#[derive(Debug, Clone)]
struct Frame {
    body: Body,
    pc: usize,
    ctl: FrameCtl,
}

impl Wire for FrameCtl {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            Self::Seq => w.u8(0),
            Self::For { reg, end } => {
                w.u8(1);
                w.u8(*reg);
                w.i64(*end);
            }
            Self::SelfSched {
                reg,
                counter,
                limit,
            } => {
                w.u8(2);
                w.u8(*reg);
                w.usize(*counter);
                w.i64(*limit);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8()? {
            0 => Self::Seq,
            1 => Self::For {
                reg: decode_reg_checked(r.u8()?)?,
                end: r.i64()?,
            },
            2 => Self::SelfSched {
                reg: decode_reg_checked(r.u8()?)?,
                counter: r.usize()?,
                limit: r.i64()?,
            },
            _ => return Err(WireError::Invalid("frame control tag")),
        })
    }
}

impl Wire for Frame {
    fn encode(&self, w: &mut WireWriter) {
        encode_body(&self.body, w);
        // `PC_AWAIT_CLAIM` (`usize::MAX`) rides through the fixed-width
        // `u64` encoding unchanged.
        w.usize(self.pc);
        self.ctl.encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let body = decode_body(r, MAX_DECODE_DEPTH)?;
        let pc = r.usize()?;
        let ctl = FrameCtl::decode(r)?;
        let await_claim_ok = matches!(ctl, FrameCtl::SelfSched { .. }) && pc == PC_AWAIT_CLAIM;
        if pc > body.len() && !await_claim_ok {
            return Err(WireError::Invalid("frame pc out of range"));
        }
        Ok(Self { body, pc, ctl })
    }
}

impl Wire for PeInterp {
    fn encode(&self, w: &mut WireWriter) {
        self.pe.encode(w);
        w.usize(self.n_pes);
        self.params.encode(w);
        for reg in &self.regs {
            w.i64(*reg);
        }
        for locked in &self.locked {
            w.bool(*locked);
        }
        self.frames.encode(w);
        w.bool(self.halted);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let pe = PeId::decode(r)?;
        let n_pes = r.usize()?;
        let params = Vec::decode(r)?;
        let mut regs = [0; NUM_REGS];
        for reg in &mut regs {
            *reg = r.i64()?;
        }
        let mut locked = [false; NUM_REGS];
        for flag in &mut locked {
            *flag = r.bool()?;
        }
        let frames: Vec<Frame> = Vec::decode(r)?;
        if frames.len() >= FrameLimitExceeded::LIMIT {
            return Err(WireError::Invalid("frame stack too deep"));
        }
        Ok(Self {
            pe,
            n_pes,
            params,
            regs,
            locked,
            frames,
            halted: r.bool()?,
        })
    }
}

/// Interpreter state for one PE.
#[derive(Debug, Clone)]
pub struct PeInterp {
    pe: PeId,
    n_pes: usize,
    params: Vec<Value>,
    regs: [Value; NUM_REGS],
    locked: [bool; NUM_REGS],
    frames: Vec<Frame>,
    halted: bool,
}

impl PeInterp {
    /// Creates an interpreter for `pe` (of `n_pes`) over `program`.
    #[must_use]
    pub fn new(pe: PeId, n_pes: usize, program: &Program) -> Self {
        Self {
            pe,
            n_pes,
            params: program.params.clone(),
            regs: [0; NUM_REGS],
            locked: [false; NUM_REGS],
            frames: vec![Frame {
                body: program.ops.clone(),
                pc: 0,
                ctl: FrameCtl::Seq,
            }],
            halted: false,
        }
    }

    /// The PE this interpreter animates.
    #[must_use]
    pub fn pe(&self) -> PeId {
        self.pe
    }

    /// Whether the program has run to completion.
    #[must_use]
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Current register values (testing / debugging).
    #[must_use]
    pub fn regs(&self) -> &[Value; NUM_REGS] {
        &self.regs
    }

    /// Whether `reg` is awaiting a memory reply.
    #[must_use]
    pub fn is_locked(&self, reg: Reg) -> bool {
        self.locked[reg as usize]
    }

    /// Locks `reg` pending a reply — called by the machine when it issues a
    /// request whose [`IssueSpec::dst`] is `reg`.
    ///
    /// # Panics
    ///
    /// Panics if the register is already locked (the interpreter's hazard
    /// checks make that impossible for well-formed call sequences).
    pub fn lock(&mut self, reg: Reg) {
        assert!(!self.locked[reg as usize], "double lock on r{reg}");
        self.locked[reg as usize] = true;
    }

    /// Delivers a memory reply into `reg`, unlocking it.
    ///
    /// # Panics
    ///
    /// Panics if the register was not locked.
    pub fn write_and_unlock(&mut self, reg: Reg, value: Value) {
        assert!(self.locked[reg as usize], "unlock of unlocked r{reg}");
        self.regs[reg as usize] = value;
        self.locked[reg as usize] = false;
    }

    fn ctx(&self, now: Cycle) -> EvalCtx<'_> {
        EvalCtx {
            regs: &self.regs,
            pe: self.pe,
            n_pes: self.n_pes,
            params: &self.params,
            clock: now as Value,
        }
    }

    /// Checks every register `exprs` read; returns the first locked one.
    fn hazard(&self, exprs: &[&Expr]) -> Option<Reg> {
        exprs.iter().find_map(|e| e.first_locked_reg(&self.locked))
    }

    /// Advances to the next instruction and reports what it needs. `now`
    /// is the machine cycle at which the fetch happens — it feeds
    /// [`Expr::Clock`] and the [`Op::WaitUntil`] target.
    ///
    /// Must be called only when the previous event has been fully handled
    /// (work charged, issue performed, reply awaited as appropriate);
    /// a [`Fetched::BlockedOnReg`] result leaves the state unchanged so the
    /// call can simply be repeated after the register unlocks.
    pub fn next_op(&mut self, now: Cycle) -> Fetched {
        loop {
            if self.halted {
                return Fetched::Halted;
            }
            let Some(top) = self.frames.last() else {
                self.halted = true;
                return Fetched::Halted;
            };

            // Iteration boundaries.
            if top.pc == PC_AWAIT_CLAIM {
                // Self-scheduled loop: the claim F&A has been delivered into
                // `reg`; test it against the limit.
                let FrameCtl::SelfSched { reg, limit, .. } = top.ctl else {
                    unreachable!("PC_AWAIT_CLAIM only in self-sched frames");
                };
                if self.locked[reg as usize] {
                    return Fetched::BlockedOnReg(reg);
                }
                if self.regs[reg as usize] < limit {
                    self.frames.last_mut().expect("top exists").pc = 0;
                } else {
                    self.frames.pop();
                }
                continue;
            }
            if top.pc >= top.body.len() {
                match top.ctl {
                    FrameCtl::Seq => {
                        self.frames.pop();
                        continue;
                    }
                    FrameCtl::For { reg, end } => {
                        self.regs[reg as usize] += 1;
                        let frame = self.frames.last_mut().expect("top exists");
                        if self.regs[reg as usize] < end {
                            frame.pc = 0;
                            // Loop back-edge: increment + test.
                            return Fetched::Work {
                                instructions: 1,
                                private_refs: 0,
                            };
                        }
                        self.frames.pop();
                        continue;
                    }
                    FrameCtl::SelfSched { reg, counter, .. } => {
                        // Claim the next index.
                        let frame = self.frames.last_mut().expect("top exists");
                        frame.pc = PC_AWAIT_CLAIM;
                        return Fetched::Issue(IssueSpec {
                            kind: MsgKind::fetch_add(),
                            vaddr: counter,
                            value: 1,
                            dst: Some(reg),
                        });
                    }
                }
            }

            // Execute the instruction at (top, pc).
            let body = top.body.clone();
            let pc = top.pc;
            match &body[pc] {
                Op::Compute(n) => {
                    self.advance();
                    return Fetched::Work {
                        instructions: *n,
                        private_refs: 0,
                    };
                }
                Op::ComputeVar { amount } => {
                    if let Some(r) = self.hazard(&[amount]) {
                        return Fetched::BlockedOnReg(r);
                    }
                    let n = amount.eval(&self.ctx(now)).clamp(0, i64::from(u32::MAX)) as u32;
                    self.advance();
                    return Fetched::Work {
                        instructions: n,
                        private_refs: 0,
                    };
                }
                Op::PrivateRef(n) => {
                    self.advance();
                    return Fetched::Work {
                        instructions: *n,
                        private_refs: *n,
                    };
                }
                Op::Load { addr, dst } => {
                    if let Some(r) = self.hazard(&[addr]) {
                        return Fetched::BlockedOnReg(r);
                    }
                    if self.locked[*dst as usize] {
                        return Fetched::BlockedOnReg(*dst);
                    }
                    let vaddr = self.eval_addr(addr, now);
                    self.advance();
                    return Fetched::Issue(IssueSpec {
                        kind: MsgKind::Load,
                        vaddr,
                        value: 0,
                        dst: Some(*dst),
                    });
                }
                Op::Store { addr, value } => {
                    if let Some(r) = self.hazard(&[addr, value]) {
                        return Fetched::BlockedOnReg(r);
                    }
                    let vaddr = self.eval_addr(addr, now);
                    let v = value.eval(&self.ctx(now));
                    self.advance();
                    return Fetched::Issue(IssueSpec {
                        kind: MsgKind::Store,
                        vaddr,
                        value: v,
                        dst: None,
                    });
                }
                Op::FetchAdd { addr, delta, dst } => {
                    if let Some(r) = self.hazard(&[addr, delta]) {
                        return Fetched::BlockedOnReg(r);
                    }
                    if let Some(d) = dst {
                        if self.locked[*d as usize] {
                            return Fetched::BlockedOnReg(*d);
                        }
                    }
                    let vaddr = self.eval_addr(addr, now);
                    let v = delta.eval(&self.ctx(now));
                    let dst = *dst;
                    self.advance();
                    return Fetched::Issue(IssueSpec {
                        kind: MsgKind::fetch_add(),
                        vaddr,
                        value: v,
                        dst,
                    });
                }
                Op::FetchPhi {
                    op,
                    addr,
                    operand,
                    dst,
                } => {
                    if let Some(r) = self.hazard(&[addr, operand]) {
                        return Fetched::BlockedOnReg(r);
                    }
                    if let Some(d) = dst {
                        if self.locked[*d as usize] {
                            return Fetched::BlockedOnReg(*d);
                        }
                    }
                    let vaddr = self.eval_addr(addr, now);
                    let v = operand.eval(&self.ctx(now));
                    let (op, dst) = (*op, *dst);
                    self.advance();
                    return Fetched::Issue(IssueSpec {
                        kind: MsgKind::FetchPhi(op),
                        vaddr,
                        value: v,
                        dst,
                    });
                }
                Op::Barrier => {
                    self.advance();
                    return Fetched::Barrier;
                }
                Op::Fence => {
                    self.advance();
                    return Fetched::Fence;
                }
                Op::Set { reg, value } => {
                    if let Some(r) = self.hazard(&[value]) {
                        return Fetched::BlockedOnReg(r);
                    }
                    if self.locked[*reg as usize] {
                        return Fetched::BlockedOnReg(*reg);
                    }
                    self.regs[*reg as usize] = value.eval(&self.ctx(now));
                    self.advance();
                    return Fetched::Work {
                        instructions: 1,
                        private_refs: 0,
                    };
                }
                Op::For {
                    reg,
                    from,
                    to,
                    body: loop_body,
                } => {
                    if let Some(r) = self.hazard(&[from, to]) {
                        return Fetched::BlockedOnReg(r);
                    }
                    if self.locked[*reg as usize] {
                        return Fetched::BlockedOnReg(*reg);
                    }
                    let start = from.eval(&self.ctx(now));
                    let end = to.eval(&self.ctx(now));
                    let (reg, loop_body) = (*reg, loop_body.clone());
                    self.advance();
                    if start < end {
                        self.regs[reg as usize] = start;
                        self.push_frame(Frame {
                            body: loop_body,
                            pc: 0,
                            ctl: FrameCtl::For { reg, end },
                        });
                    }
                    // Loop setup (or the skipped test).
                    return Fetched::Work {
                        instructions: 1,
                        private_refs: 0,
                    };
                }
                Op::SelfSched {
                    reg,
                    counter,
                    limit,
                    body: loop_body,
                } => {
                    if let Some(r) = self.hazard(&[counter, limit]) {
                        return Fetched::BlockedOnReg(r);
                    }
                    if self.locked[*reg as usize] {
                        return Fetched::BlockedOnReg(*reg);
                    }
                    let counter = self.eval_addr(counter, now);
                    let limit = limit.eval(&self.ctx(now));
                    let (reg, loop_body) = (*reg, loop_body.clone());
                    self.advance();
                    self.push_frame(Frame {
                        body: loop_body,
                        pc: PC_AWAIT_CLAIM,
                        ctl: FrameCtl::SelfSched {
                            reg,
                            counter,
                            limit,
                        },
                    });
                    // Immediately claim the first index.
                    return Fetched::Issue(IssueSpec {
                        kind: MsgKind::fetch_add(),
                        vaddr: counter,
                        value: 1,
                        dst: Some(reg),
                    });
                }
                Op::If {
                    cond,
                    then_ops,
                    else_ops,
                } => {
                    if let Some(r) = cond.first_locked_reg(&self.locked) {
                        return Fetched::BlockedOnReg(r);
                    }
                    let taken = cond.eval(&self.ctx(now));
                    let branch = if taken { then_ops } else { else_ops }.clone();
                    self.advance();
                    if !branch.is_empty() {
                        self.push_frame(Frame {
                            body: branch,
                            pc: 0,
                            ctl: FrameCtl::Seq,
                        });
                    }
                    return Fetched::Work {
                        instructions: 1,
                        private_refs: 0,
                    };
                }
                Op::Halt => {
                    self.halted = true;
                    return Fetched::Halted;
                }
                Op::WaitUntil { cycle } => {
                    if let Some(r) = self.hazard(&[cycle]) {
                        return Fetched::BlockedOnReg(r);
                    }
                    // The target is fixed here, at fetch — a relative
                    // `Clock + k` sleeps k cycles instead of chasing a
                    // moving target — and the instruction is consumed:
                    // waking resumes at the next op.
                    let target = cycle.eval(&self.ctx(now)).max(0) as Cycle;
                    self.advance();
                    if now >= target {
                        return Fetched::Work {
                            instructions: 1,
                            private_refs: 0,
                        };
                    }
                    return Fetched::SleepUntil(target);
                }
            }
        }
    }

    fn advance(&mut self) {
        self.frames.last_mut().expect("frame exists").pc += 1;
    }

    fn push_frame(&mut self, frame: Frame) {
        assert!(
            self.frames.len() < FrameLimitExceeded::LIMIT,
            "{}",
            FrameLimitExceeded
        );
        self.frames.push(frame);
    }

    fn eval_addr(&self, e: &Expr, now: Cycle) -> usize {
        let v = e.eval(&self.ctx(now));
        usize::try_from(v).unwrap_or_else(|_| panic!("negative address {v} on {}", self.pe))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{body, CmpOp, Cond};
    use std::collections::HashMap;

    /// Runs a program against an instant-memory harness, returning the
    /// final memory and interpreter.
    fn run(program: &Program, pe: usize, n_pes: usize) -> (HashMap<usize, Value>, PeInterp) {
        let mut mem: HashMap<usize, Value> = HashMap::new();
        let mut interp = PeInterp::new(PeId(pe), n_pes, program);
        for _ in 0..100_000 {
            match interp.next_op(0) {
                Fetched::Halted => return (mem, interp),
                Fetched::Work { .. } => {}
                Fetched::Barrier | Fetched::Fence => {} // instant in this harness
                Fetched::SleepUntil(_) => {}            // time is instant here too
                Fetched::BlockedOnReg(_) => {
                    unreachable!("instant memory never leaves registers locked")
                }
                Fetched::Issue(spec) => {
                    // Serve instantly.
                    let slot = mem.entry(spec.vaddr).or_insert(0);
                    let reply = match spec.kind {
                        MsgKind::Load => *slot,
                        MsgKind::Store => {
                            *slot = spec.value;
                            0
                        }
                        MsgKind::FetchPhi(op) => {
                            let old = *slot;
                            *slot = op.apply(old, spec.value);
                            old
                        }
                    };
                    if let Some(dst) = spec.dst {
                        interp.lock(dst);
                        interp.write_and_unlock(dst, reply);
                    }
                }
            }
        }
        panic!("program did not halt");
    }

    #[test]
    fn straight_line_store_and_load() {
        let p = Program::new(
            body(vec![
                Op::Store {
                    addr: Expr::Const(10),
                    value: Expr::Const(42),
                },
                Op::Load {
                    addr: Expr::Const(10),
                    dst: 0,
                },
                Op::Store {
                    addr: Expr::Const(11),
                    value: Expr::add(Expr::Reg(0), 1),
                },
                Op::Halt,
            ]),
            vec![],
        );
        let (mem, _) = run(&p, 0, 1);
        assert_eq!(mem[&10], 42);
        assert_eq!(mem[&11], 43);
    }

    #[test]
    fn for_loop_runs_exact_trip_count() {
        // for r0 in 0..5 { mem[100 + r0] = r0 * 2 }
        let p = Program::new(
            body(vec![
                Op::For {
                    reg: 0,
                    from: Expr::Const(0),
                    to: Expr::Const(5),
                    body: body(vec![Op::Store {
                        addr: Expr::add(Expr::Const(100), Expr::Reg(0)),
                        value: Expr::mul(Expr::Reg(0), 2),
                    }]),
                },
                Op::Halt,
            ]),
            vec![],
        );
        let (mem, _) = run(&p, 0, 1);
        for i in 0..5 {
            assert_eq!(mem[&(100 + i)], (i as Value) * 2);
        }
        assert!(!mem.contains_key(&105));
    }

    #[test]
    fn empty_for_loop_skips_body() {
        let p = Program::new(
            body(vec![
                Op::For {
                    reg: 0,
                    from: Expr::Const(3),
                    to: Expr::Const(3),
                    body: body(vec![Op::Store {
                        addr: Expr::Const(0),
                        value: Expr::Const(1),
                    }]),
                },
                Op::Halt,
            ]),
            vec![],
        );
        let (mem, _) = run(&p, 0, 1);
        assert!(mem.is_empty());
    }

    #[test]
    fn nested_loops() {
        // for r0 in 0..3 { for r1 in 0..4 { mem[r0*4 + r1] += 1 } }
        let p = Program::new(
            body(vec![
                Op::For {
                    reg: 0,
                    from: Expr::Const(0),
                    to: Expr::Const(3),
                    body: body(vec![Op::For {
                        reg: 1,
                        from: Expr::Const(0),
                        to: Expr::Const(4),
                        body: body(vec![Op::FetchAdd {
                            addr: Expr::add(Expr::mul(Expr::Reg(0), 4), Expr::Reg(1)),
                            delta: Expr::Const(1),
                            dst: None,
                        }]),
                    }]),
                },
                Op::Halt,
            ]),
            vec![],
        );
        let (mem, _) = run(&p, 0, 1);
        assert_eq!(mem.len(), 12);
        assert!(mem.values().all(|&v| v == 1));
    }

    #[test]
    fn self_sched_claims_every_index_once() {
        // Single PE: self-sched over 7 items writes each slot exactly once.
        let p = Program::new(
            body(vec![
                Op::SelfSched {
                    reg: 0,
                    counter: Expr::Const(0),
                    limit: Expr::Const(7),
                    body: body(vec![Op::FetchAdd {
                        addr: Expr::add(Expr::Const(100), Expr::Reg(0)),
                        delta: Expr::Const(1),
                        dst: None,
                    }]),
                },
                Op::Halt,
            ]),
            vec![],
        );
        let (mem, _) = run(&p, 0, 1);
        for i in 0..7usize {
            assert_eq!(mem[&(100 + i)], 1, "slot {i}");
        }
        assert_eq!(mem[&0], 8, "counter over-claimed by exactly one");
    }

    #[test]
    fn if_branches() {
        let p = Program::new(
            body(vec![
                Op::If {
                    cond: Cond::new(Expr::PeIndex, CmpOp::Eq, 0),
                    then_ops: body(vec![Op::Store {
                        addr: Expr::Const(1),
                        value: Expr::Const(111),
                    }]),
                    else_ops: body(vec![Op::Store {
                        addr: Expr::Const(2),
                        value: Expr::Const(222),
                    }]),
                },
                Op::Halt,
            ]),
            vec![],
        );
        let (mem0, _) = run(&p, 0, 4);
        assert_eq!(mem0.get(&1), Some(&111));
        assert!(!mem0.contains_key(&2));
        let (mem3, _) = run(&p, 3, 4);
        assert_eq!(mem3.get(&2), Some(&222));
    }

    #[test]
    fn register_locking_blocks_use() {
        let p = Program::new(
            body(vec![
                Op::Load {
                    addr: Expr::Const(10),
                    dst: 0,
                },
                Op::Compute(5),
                Op::Set {
                    reg: 1,
                    value: Expr::add(Expr::Reg(0), 1),
                },
                Op::Halt,
            ]),
            vec![],
        );
        let mut interp = PeInterp::new(PeId(0), 1, &p);
        // The load issues and locks r0.
        let Fetched::Issue(spec) = interp.next_op(0) else {
            panic!("expected load issue");
        };
        interp.lock(spec.dst.unwrap());
        // Independent work proceeds while the load is in flight (§3.5:
        // "continue execution of the instruction stream immediately").
        assert_eq!(
            interp.next_op(0),
            Fetched::Work {
                instructions: 5,
                private_refs: 0
            }
        );
        // The dependent Set must block.
        assert_eq!(interp.next_op(0), Fetched::BlockedOnReg(0));
        assert_eq!(interp.next_op(0), Fetched::BlockedOnReg(0), "retry safe");
        interp.write_and_unlock(0, 9);
        assert_eq!(
            interp.next_op(0),
            Fetched::Work {
                instructions: 1,
                private_refs: 0
            }
        );
        assert_eq!(interp.regs()[1], 10);
    }

    #[test]
    fn waw_hazard_blocks_second_load() {
        let p = Program::new(
            body(vec![
                Op::Load {
                    addr: Expr::Const(10),
                    dst: 0,
                },
                Op::Load {
                    addr: Expr::Const(11),
                    dst: 0,
                },
                Op::Halt,
            ]),
            vec![],
        );
        let mut interp = PeInterp::new(PeId(0), 1, &p);
        let Fetched::Issue(s) = interp.next_op(0) else {
            panic!()
        };
        interp.lock(s.dst.unwrap());
        assert_eq!(interp.next_op(0), Fetched::BlockedOnReg(0));
    }

    #[test]
    fn barrier_and_fence_surface_to_machine() {
        let p = Program::new(body(vec![Op::Barrier, Op::Fence, Op::Halt]), vec![]);
        let mut interp = PeInterp::new(PeId(0), 2, &p);
        assert_eq!(interp.next_op(0), Fetched::Barrier);
        assert_eq!(interp.next_op(0), Fetched::Fence);
        assert_eq!(interp.next_op(0), Fetched::Halted);
        assert!(interp.is_halted());
    }

    #[test]
    fn missing_halt_still_terminates() {
        let p = Program::new(body(vec![Op::Compute(1)]), vec![]);
        let (_, interp) = run(&p, 0, 1);
        assert!(interp.is_halted());
    }

    #[test]
    fn compute_and_private_ref_costs() {
        let p = Program::new(
            body(vec![Op::Compute(7), Op::PrivateRef(3), Op::Halt]),
            vec![],
        );
        let mut interp = PeInterp::new(PeId(0), 1, &p);
        assert_eq!(
            interp.next_op(0),
            Fetched::Work {
                instructions: 7,
                private_refs: 0
            }
        );
        assert_eq!(
            interp.next_op(0),
            Fetched::Work {
                instructions: 3,
                private_refs: 3
            }
        );
    }

    #[test]
    fn compute_var_scales_with_registers() {
        let p = Program::new(
            body(vec![
                Op::Set {
                    reg: 0,
                    value: Expr::Const(6),
                },
                Op::ComputeVar {
                    amount: Expr::mul(Expr::Reg(0), 3),
                },
                Op::ComputeVar {
                    amount: Expr::Const(-5), // clamped to zero
                },
                Op::Halt,
            ]),
            vec![],
        );
        let mut interp = PeInterp::new(PeId(0), 1, &p);
        assert_eq!(
            interp.next_op(0),
            Fetched::Work {
                instructions: 1,
                private_refs: 0
            }
        );
        assert_eq!(
            interp.next_op(0),
            Fetched::Work {
                instructions: 18,
                private_refs: 0
            }
        );
        assert_eq!(
            interp.next_op(0),
            Fetched::Work {
                instructions: 0,
                private_refs: 0
            }
        );
    }

    #[test]
    fn compute_var_blocks_on_locked_register() {
        let p = Program::new(
            body(vec![
                Op::Load {
                    addr: Expr::Const(1),
                    dst: 0,
                },
                Op::ComputeVar {
                    amount: Expr::Reg(0),
                },
                Op::Halt,
            ]),
            vec![],
        );
        let mut interp = PeInterp::new(PeId(0), 1, &p);
        let Fetched::Issue(spec) = interp.next_op(0) else {
            panic!()
        };
        interp.lock(spec.dst.unwrap());
        assert_eq!(interp.next_op(0), Fetched::BlockedOnReg(0));
        interp.write_and_unlock(0, 4);
        assert_eq!(
            interp.next_op(0),
            Fetched::Work {
                instructions: 4,
                private_refs: 0
            }
        );
    }

    #[test]
    fn mid_run_interpreter_round_trips_through_wire() {
        use ultra_sim::wire::{Wire, WireError, WireReader, WireWriter};
        // Snapshot inside a self-scheduled loop, with a claim in flight
        // (locked register, PC_AWAIT_CLAIM frame) — the hardest state.
        let p = Program::new(
            body(vec![
                Op::Set {
                    reg: 2,
                    value: Expr::Const(5),
                },
                Op::SelfSched {
                    reg: 0,
                    counter: Expr::Const(0),
                    limit: Expr::Const(6),
                    body: body(vec![Op::FetchAdd {
                        addr: Expr::add(Expr::Const(100), Expr::Reg(0)),
                        delta: Expr::Reg(2),
                        dst: None,
                    }]),
                },
                Op::Halt,
            ]),
            vec![],
        );
        let mut interp = PeInterp::new(PeId(3), 8, &p);
        assert!(matches!(interp.next_op(0), Fetched::Work { .. })); // Set
        let Fetched::Issue(spec) = interp.next_op(0) else {
            panic!("expected the first claim");
        };
        interp.lock(spec.dst.unwrap());

        let mut w = WireWriter::new();
        interp.encode(&mut w);
        let bytes = w.into_bytes();
        let mut copy = PeInterp::decode(&mut WireReader::new(&bytes)).unwrap();

        // Both copies must replay identically from here.
        let drive = |i: &mut PeInterp| -> Vec<Fetched> {
            i.write_and_unlock(0, 0); // deliver the claim: index 0
            let mut log = Vec::new();
            for _ in 0..32 {
                let f = i.next_op(0);
                let done = f == Fetched::Halted;
                if let Fetched::Issue(s) = &f {
                    if let Some(d) = s.dst {
                        i.lock(d);
                        i.write_and_unlock(d, 6); // claims exhaust the loop
                    }
                }
                log.push(f);
                if done {
                    break;
                }
            }
            log
        };
        assert_eq!(drive(&mut interp), drive(&mut copy));
        assert_eq!(interp.regs(), copy.regs());

        // Truncation is an error, never a panic.
        for cut in 0..bytes.len() {
            assert!(PeInterp::decode(&mut WireReader::new(&bytes[..cut])).is_err());
        }
        // A register index past the file is rejected.
        let mut w = WireWriter::new();
        FrameCtl::For { reg: 200, end: 3 }.encode(&mut w);
        assert_eq!(
            FrameCtl::decode(&mut WireReader::new(&w.into_bytes())).err(),
            Some(WireError::Invalid("register index out of range"))
        );
    }

    #[test]
    fn wait_until_sleeps_then_resumes_at_next_op() {
        let p = Program::new(
            body(vec![
                Op::WaitUntil {
                    cycle: Expr::Const(100),
                },
                Op::Store {
                    addr: Expr::Const(7),
                    value: Expr::Clock,
                },
                Op::Halt,
            ]),
            vec![],
        );
        let mut interp = PeInterp::new(PeId(0), 1, &p);
        // Fetched before the target: park until cycle 100; the op is
        // consumed, so waking resumes at the store.
        assert_eq!(interp.next_op(10), Fetched::SleepUntil(100));
        let Fetched::Issue(spec) = interp.next_op(100) else {
            panic!("expected the store after waking");
        };
        assert_eq!(spec.vaddr, 7);
        assert_eq!(spec.value, 100, "Clock stamps the fetch cycle");
        assert_eq!(interp.next_op(101), Fetched::Halted);
    }

    #[test]
    fn wait_until_in_the_past_is_one_instruction() {
        let p = Program::new(
            body(vec![
                Op::WaitUntil {
                    cycle: Expr::Const(5),
                },
                Op::Halt,
            ]),
            vec![],
        );
        let mut interp = PeInterp::new(PeId(0), 1, &p);
        assert_eq!(
            interp.next_op(9),
            Fetched::Work {
                instructions: 1,
                private_refs: 0
            }
        );
        assert_eq!(interp.next_op(10), Fetched::Halted);
    }

    #[test]
    fn relative_wait_sleeps_from_fetch_cycle() {
        // WaitUntil(Clock + 50) fetched at cycle 200 wakes at 250 — the
        // target is fixed at fetch, not re-evaluated.
        let p = Program::new(
            body(vec![
                Op::WaitUntil {
                    cycle: Expr::add(Expr::Clock, 50),
                },
                Op::Halt,
            ]),
            vec![],
        );
        let mut interp = PeInterp::new(PeId(0), 1, &p);
        assert_eq!(interp.next_op(200), Fetched::SleepUntil(250));
        assert_eq!(interp.next_op(250), Fetched::Halted);
    }

    #[test]
    #[should_panic(expected = "negative address")]
    fn negative_address_panics() {
        let p = Program::new(
            body(vec![Op::Load {
                addr: Expr::Const(-5),
                dst: 0,
            }]),
            vec![],
        );
        let mut interp = PeInterp::new(PeId(0), 1, &p);
        let _ = interp.next_op(0);
    }
}

//! The idealized paracomputer model (paper §2).
//!
//! "An idealized parallel processor, dubbed a paracomputer by Schwartz and
//! classified as a WRAM by Borodin and Hopcroft, consists of autonomous
//! processing elements sharing a central memory. The model permits every PE
//! to read or write a shared memory cell in one cycle" (§2.1), augmented
//! with **fetch-and-add** (§2.2) and governed by the **serialization
//! principle**: "the effect of simultaneous actions by the PEs is as if the
//! actions occurred in some (unspecified) serial order".
//!
//! [`Paracomputer::apply_batch`] is that principle made executable: it takes
//! a batch of *simultaneous* operations, serializes them in a seeded-random
//! order (so tests can observe that correctness never depends on the order
//! chosen), applies them, and returns each operation's result in input
//! order. Fetch-and-phi (§2.4) is supported for every
//! [`PhiOp`]; `swap` and `test-and-set` are provided as the derived
//! special cases the paper derives them to be.

use std::collections::HashMap;

use ultra_net::message::PhiOp;
use ultra_sim::wire::{Wire, WireError, WireReader, WireWriter};
use ultra_sim::{Rng, SplitMix64, Value};

/// One memory operation directed at a flat shared address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemOp {
    /// Read a word.
    Load {
        /// Target address.
        addr: usize,
    },
    /// Write a word.
    Store {
        /// Target address.
        addr: usize,
        /// Datum to write.
        value: Value,
    },
    /// Atomically fetch the old value and store `phi(old, operand)`.
    FetchPhi {
        /// The associative operator.
        op: PhiOp,
        /// Target address.
        addr: usize,
        /// Right operand of phi.
        operand: Value,
    },
}

impl MemOp {
    /// The paper's fetch-and-add.
    #[must_use]
    pub fn fetch_add(addr: usize, delta: Value) -> Self {
        MemOp::FetchPhi {
            op: PhiOp::Add,
            addr,
            operand: delta,
        }
    }
}

/// The ideal shared memory.
///
/// # Example
///
/// ```
/// use ultracomputer::paracomputer::{MemOp, Paracomputer};
///
/// let mut pc = Paracomputer::new(42);
/// // A thousand PEs simultaneously fetch-and-add 1 to one cell: the cell
/// // receives the full increment and the returned values are a permutation
/// // of 0..1000 — "in the time required for just one such operation".
/// let ops: Vec<MemOp> = (0..1000).map(|_| MemOp::fetch_add(7, 1)).collect();
/// let mut results = pc.apply_batch(&ops);
/// results.sort_unstable();
/// assert_eq!(results, (0..1000).collect::<Vec<_>>());
/// assert_eq!(pc.load(7), 1000);
/// ```
#[derive(Debug, Clone)]
pub struct Paracomputer {
    mem: HashMap<usize, Value>,
    rng: SplitMix64,
}

impl Wire for Paracomputer {
    fn encode(&self, w: &mut WireWriter) {
        self.mem.encode(w);
        // The rng *state* (not the original seed) is what preserves the
        // serialization order of batches applied after a restore.
        self.rng.encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            mem: HashMap::decode(r)?,
            rng: SplitMix64::decode(r)?,
        })
    }
}

impl Paracomputer {
    /// Creates an empty memory; `seed` drives the (unspecified!)
    /// serialization order chosen for simultaneous batches.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            mem: HashMap::new(),
            rng: SplitMix64::new(seed),
        }
    }

    /// Reads a word directly (single-cycle paracomputer load).
    #[must_use]
    pub fn load(&self, addr: usize) -> Value {
        self.mem.get(&addr).copied().unwrap_or(0)
    }

    /// Writes a word directly (single-cycle paracomputer store).
    pub fn store(&mut self, addr: usize, value: Value) {
        self.mem.insert(addr, value);
    }

    /// The indivisible fetch-and-add of §2.2.
    pub fn fetch_add(&mut self, addr: usize, delta: Value) -> Value {
        self.fetch_phi(PhiOp::Add, addr, delta)
    }

    /// The general fetch-and-phi of §2.4.
    pub fn fetch_phi(&mut self, op: PhiOp, addr: usize, operand: Value) -> Value {
        let slot = self.mem.entry(addr).or_insert(0);
        let old = *slot;
        *slot = op.apply(old, operand);
        old
    }

    /// `Swap(L, V)` as the paper derives it: `L <- FetchΦ_π₂(V, L)`.
    pub fn swap(&mut self, addr: usize, value: Value) -> Value {
        self.fetch_phi(PhiOp::Second, addr, value)
    }

    /// `TestAndSet(V)` as the paper derives it: `Fetch&Or(V, TRUE)` viewed
    /// as a boolean. Returns the *old* truth value.
    pub fn test_and_set(&mut self, addr: usize) -> bool {
        self.fetch_phi(PhiOp::Or, addr, 1) != 0
    }

    /// Applies a batch of *simultaneous* operations under the serialization
    /// principle and returns each operation's result in input order
    /// (store results are 0).
    ///
    /// The serial order is chosen pseudo-randomly from the seed; any
    /// algorithm whose correctness depends on a particular order is broken,
    /// and the property tests exploit this.
    pub fn apply_batch(&mut self, ops: &[MemOp]) -> Vec<Value> {
        let mut order: Vec<usize> = (0..ops.len()).collect();
        self.rng.shuffle(&mut order);
        let mut results = vec![0; ops.len()];
        for i in order {
            results[i] = match ops[i] {
                MemOp::Load { addr } => self.load(addr),
                MemOp::Store { addr, value } => {
                    self.store(addr, value);
                    0
                }
                MemOp::FetchPhi { op, addr, operand } => self.fetch_phi(op, addr, operand),
            };
        }
        results
    }

    /// Number of distinct words ever written.
    #[must_use]
    pub fn footprint(&self) -> usize {
        self.mem.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_memory_reads_zero() {
        let pc = Paracomputer::new(0);
        assert_eq!(pc.load(123), 0);
    }

    #[test]
    fn fetch_add_semantics_match_section_2_2() {
        // "ANSi <- F&A(V, ei)": either ANSi = V, ANSj = V + ei or the other
        // way; in both cases V becomes V + ei + ej.
        for seed in 0..32 {
            let mut pc = Paracomputer::new(seed);
            pc.store(0, 10);
            let res = pc.apply_batch(&[MemOp::fetch_add(0, 3), MemOp::fetch_add(0, 5)]);
            assert!(
                res == vec![10, 13] || res == vec![15, 10],
                "unexpected serialization {res:?}"
            );
            assert_eq!(pc.load(0), 18);
        }
    }

    #[test]
    fn distinct_array_indices_from_shared_counter() {
        // §2.2: "Each PE obtains an index to a distinct array element."
        let mut pc = Paracomputer::new(7);
        let ops: Vec<MemOp> = (0..100).map(|_| MemOp::fetch_add(9, 1)).collect();
        let mut res = pc.apply_batch(&ops);
        res.sort_unstable();
        assert_eq!(res, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn commutative_phi_final_value_is_order_independent() {
        // §2.4: "If phi is both associative and commutative, the final value
        // in V ... is independent of the serialization order chosen."
        for op in [
            PhiOp::Add,
            PhiOp::And,
            PhiOp::Or,
            PhiOp::Xor,
            PhiOp::Max,
            PhiOp::Min,
        ] {
            let mut finals = std::collections::HashSet::new();
            for seed in 0..16 {
                let mut pc = Paracomputer::new(seed);
                pc.store(0, 0b0110);
                let ops: Vec<MemOp> = [3, 9, 12, 5]
                    .iter()
                    .map(|&v| MemOp::FetchPhi {
                        op,
                        addr: 0,
                        operand: v,
                    })
                    .collect();
                let _ = pc.apply_batch(&ops);
                finals.insert(pc.load(0));
            }
            assert_eq!(finals.len(), 1, "{op:?} final value varied with order");
        }
    }

    #[test]
    fn swap_and_test_and_set_are_special_cases() {
        let mut pc = Paracomputer::new(0);
        pc.store(4, 11);
        assert_eq!(pc.swap(4, 22), 11);
        assert_eq!(pc.load(4), 22);

        assert!(!pc.test_and_set(5), "first test-and-set wins");
        assert!(pc.test_and_set(5), "second sees TRUE");
    }

    #[test]
    fn simultaneous_load_and_stores_obey_serialization() {
        // §2.1's example: one load and two stores at the same cell. The
        // cell ends with one of the stored values; the load returns the
        // original or one of the stored values.
        let mut outcomes = std::collections::HashSet::new();
        for seed in 0..64 {
            let mut pc = Paracomputer::new(seed);
            pc.store(0, 1);
            let res = pc.apply_batch(&[
                MemOp::Load { addr: 0 },
                MemOp::Store { addr: 0, value: 2 },
                MemOp::Store { addr: 0, value: 3 },
            ]);
            let final_v = pc.load(0);
            assert!([2, 3].contains(&final_v));
            assert!([1, 2, 3].contains(&res[0]));
            outcomes.insert((res[0], final_v));
        }
        assert!(outcomes.len() > 1, "different serial orders are exercised");
    }

    #[test]
    fn batch_results_in_input_order() {
        let mut pc = Paracomputer::new(3);
        pc.store(10, 100);
        pc.store(20, 200);
        let res = pc.apply_batch(&[MemOp::Load { addr: 20 }, MemOp::Load { addr: 10 }]);
        assert_eq!(res, vec![200, 100]);
    }

    #[test]
    fn paracomputer_round_trip_preserves_serialization_stream() {
        use ultra_sim::wire::{Wire, WireReader, WireWriter};
        let mut pc = Paracomputer::new(99);
        let warm: Vec<MemOp> = (0..50).map(|_| MemOp::fetch_add(0, 1)).collect();
        let _ = pc.apply_batch(&warm); // advance the rng past its seed
        let mut w = WireWriter::new();
        pc.encode(&mut w);
        let bytes = w.into_bytes();
        let mut copy = Paracomputer::decode(&mut WireReader::new(&bytes)).unwrap();
        // Identical future serialization orders and memory contents.
        let batch: Vec<MemOp> = (0..20).map(|i| MemOp::fetch_add(i % 3, 1)).collect();
        assert_eq!(pc.apply_batch(&batch), copy.apply_batch(&batch));
        assert_eq!(pc.load(0), copy.load(0));
        for cut in 0..bytes.len() {
            assert!(Paracomputer::decode(&mut WireReader::new(&bytes[..cut])).is_err());
        }
    }

    #[test]
    fn footprint_counts_touched_words() {
        let mut pc = Paracomputer::new(0);
        let _ = pc.fetch_add(1, 1);
        pc.store(2, 5);
        let _ = pc.load(3); // loads of unwritten words don't allocate
        assert_eq!(pc.footprint(), 2);
    }
}

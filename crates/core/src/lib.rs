//! # ultracomputer — the NYU Ultracomputer in Rust
//!
//! A production-quality reproduction of Gottlieb, Grishman, Kruskal,
//! McAuliffe, Rudolph & Snir, *"The NYU Ultracomputer — Designing a MIMD,
//! Shared-Memory Parallel Machine"*: a machine in which thousands of
//! autonomous PEs share memory through a message-switched, pipelined
//! Omega network whose switches **combine** simultaneous requests — above
//! all the **fetch-and-add** coordination primitive — so that concurrent
//! references to one memory cell cost no more than one.
//!
//! This crate assembles the substrates into two user-facing machines:
//!
//! * [`paracomputer::Paracomputer`] — the §2 ideal: single-cycle shared
//!   memory under the serialization principle, with fetch-and-phi.
//! * [`machine::Machine`] — the §3 hardware proposal: PEs with register
//!   locking, PNIs enforcing the pipeline policy, `d` copies of the
//!   combining network, and memory banks with MNI adders. Built via
//!   [`machine::MachineBuilder`]; programs are written in the small DSL of
//!   [`program`] and interpreted per-PE by [`interp::PeInterp`].
//!
//! # Quick start
//!
//! ```
//! use ultracomputer::machine::MachineBuilder;
//! use ultracomputer::program::{body, Expr, Op, Program};
//!
//! // 16 PEs each fetch-and-add 1 to a shared counter, then store their
//! // ticket into a distinct slot — the paper's §2.2 index-assignment idiom.
//! let program = Program::new(
//!     body(vec![
//!         Op::FetchAdd {
//!             addr: Expr::Const(0),
//!             delta: Expr::Const(1),
//!             dst: Some(0),
//!         },
//!         Op::Store {
//!             addr: Expr::add(Expr::Const(100), Expr::Reg(0)),
//!             value: Expr::PeIndex,
//!         },
//!         Op::Halt,
//!     ]),
//!     vec![],
//! );
//! let mut machine = MachineBuilder::new(16).build_spmd(&program);
//! let outcome = machine.run();
//! assert!(outcome.completed);
//! assert_eq!(machine.read_shared(0), 16);
//! ```
//!
//! The substrate crates are re-exported for convenience: `ultra_net` (the
//! combining network), `ultra_mem` (memory modules), `ultra_pe` (caches,
//! PNIs, traffic), `ultra_sim` (clock/RNG/stats).

pub mod engine;
pub mod export;
pub mod interp;
pub mod machine;
pub mod paracomputer;
pub mod program;
pub mod report;
pub mod snapshot;
pub mod trace;

pub use engine::EngineMode;
pub use export::chrome_trace;
pub use machine::{BackendKind, FaultSummary, Machine, MachineBuilder, MachineConfig, RunOutcome};
pub use paracomputer::{MemOp, Paracomputer};
pub use program::{Expr, Op, Program};
pub use report::MachineReport;
pub use snapshot::{EngineTuning, SnapshotError};

/// Compile-checks the README's Rust examples as doctests.
#[cfg(doctest)]
#[doc = include_str!("../../../README.md")]
mod readme_doctests {}

pub use ultra_faults;
pub use ultra_mem;
pub use ultra_net;
pub use ultra_obs;
pub use ultra_pe;
pub use ultra_sim;

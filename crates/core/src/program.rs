//! The per-PE program DSL in which workloads are written.
//!
//! The paper's workload studies ran real scientific codes on an
//! instruction-level paracomputer simulator (§4.2, §5). This module is the
//! equivalent substrate: a small imperative language whose statements cost
//! whole instructions, whose memory references go through the machine's
//! shared-memory backend, and whose scheduling constructs are exactly the
//! fetch-and-add idioms the paper advocates:
//!
//! * [`Op::FetchAdd`] — the §2.2 primitive;
//! * [`Op::SelfSched`] — the "several PEs concurrently applying
//!   fetch-and-add to a shared array index" idiom (§2.2) as a
//!   self-scheduled loop: `while (i = F&A(counter, 1)) < limit { body }`;
//! * [`Op::Barrier`] — a machine-assisted barrier whose arrivals are real
//!   combinable fetch-and-adds on a shared word.
//!
//! Loads lock their destination register until the reply arrives (§3.5
//! register locking); an instruction that *uses* a locked register stalls
//! the PE — so programs prefetch by hoisting loads above independent work,
//! exactly as the paper says the CDC compiler did.

use std::sync::Arc;

use ultra_net::message::PhiOp;
use ultra_sim::wire::{Wire, WireError, WireReader, WireWriter};
use ultra_sim::{PeId, Value};

/// Register index; each PE has [`NUM_REGS`] general registers.
pub type Reg = u8;

/// Number of registers per PE.
pub const NUM_REGS: usize = 16;

/// An integer expression over registers, parameters and PE identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A literal.
    Const(Value),
    /// The current value of a register (stalls while locked).
    Reg(Reg),
    /// This PE's index, `0..NumPes`.
    PeIndex,
    /// The number of PEs running the program.
    NumPes,
    /// Program parameter `i` (problem size, strides, …).
    Param(u8),
    /// A binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// The machine cycle at which the instruction reading this is
    /// fetched — the PE's real-time clock register. Serving workloads
    /// stamp request completion times with it and pace themselves
    /// against [`Op::WaitUntil`].
    Clock,
}

/// Binary operators available in [`Expr`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Euclidean-ish division (0 if divisor is 0).
    Div,
    /// Remainder (0 if divisor is 0).
    Rem,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Deterministic avalanche mix of `a + b` — used by workload
    /// generators to scatter synthetic addresses (particle tracking,
    /// hashed access patterns) without a runtime RNG.
    Hash,
}

impl Expr {
    /// `a + b`.
    #[must_use]
    pub fn add(a: impl Into<Expr>, b: impl Into<Expr>) -> Expr {
        Expr::Bin(BinOp::Add, Box::new(a.into()), Box::new(b.into()))
    }

    /// `a - b`.
    #[must_use]
    pub fn sub(a: impl Into<Expr>, b: impl Into<Expr>) -> Expr {
        Expr::Bin(BinOp::Sub, Box::new(a.into()), Box::new(b.into()))
    }

    /// `a * b`.
    #[must_use]
    pub fn mul(a: impl Into<Expr>, b: impl Into<Expr>) -> Expr {
        Expr::Bin(BinOp::Mul, Box::new(a.into()), Box::new(b.into()))
    }

    /// `a / b` (0 when `b == 0`).
    #[must_use]
    pub fn div(a: impl Into<Expr>, b: impl Into<Expr>) -> Expr {
        Expr::Bin(BinOp::Div, Box::new(a.into()), Box::new(b.into()))
    }

    /// `a % b` (0 when `b == 0`).
    #[must_use]
    pub fn rem(a: impl Into<Expr>, b: impl Into<Expr>) -> Expr {
        Expr::Bin(BinOp::Rem, Box::new(a.into()), Box::new(b.into()))
    }

    /// `min(a, b)`.
    #[must_use]
    pub fn min(a: impl Into<Expr>, b: impl Into<Expr>) -> Expr {
        Expr::Bin(BinOp::Min, Box::new(a.into()), Box::new(b.into()))
    }

    /// `max(a, b)`.
    #[must_use]
    pub fn max(a: impl Into<Expr>, b: impl Into<Expr>) -> Expr {
        Expr::Bin(BinOp::Max, Box::new(a.into()), Box::new(b.into()))
    }

    /// `hash(a + b)` — a non-negative deterministic mix for synthetic
    /// address scattering.
    #[must_use]
    pub fn hash(a: impl Into<Expr>, b: impl Into<Expr>) -> Expr {
        Expr::Bin(BinOp::Hash, Box::new(a.into()), Box::new(b.into()))
    }

    /// Evaluates with `ctx`.
    ///
    /// Callers must already have verified via [`Expr::first_locked_reg`]
    /// that no register read here is locked.
    #[must_use]
    pub fn eval(&self, ctx: &EvalCtx<'_>) -> Value {
        match self {
            Expr::Const(v) => *v,
            Expr::Reg(r) => ctx.regs[*r as usize],
            Expr::PeIndex => ctx.pe.0 as Value,
            Expr::NumPes => ctx.n_pes as Value,
            Expr::Param(i) => ctx.params.get(*i as usize).copied().unwrap_or(0),
            Expr::Clock => ctx.clock,
            Expr::Bin(op, a, b) => {
                let (a, b) = (a.eval(ctx), b.eval(ctx));
                match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                    BinOp::Div => {
                        if b == 0 {
                            0
                        } else {
                            a.wrapping_div(b)
                        }
                    }
                    BinOp::Rem => {
                        if b == 0 {
                            0
                        } else {
                            a.wrapping_rem(b)
                        }
                    }
                    BinOp::Min => a.min(b),
                    BinOp::Max => a.max(b),
                    BinOp::Hash => {
                        // SplitMix64 finalizer over the sum, kept
                        // non-negative so results can serve as addresses.
                        let mut z = (a.wrapping_add(b)) as u64;
                        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
                        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                        ((z ^ (z >> 31)) >> 1) as Value
                    }
                }
            }
        }
    }

    /// The first locked register this expression reads, if any — the
    /// register-locking hazard check (§3.5).
    #[must_use]
    pub fn first_locked_reg(&self, locked: &[bool; NUM_REGS]) -> Option<Reg> {
        match self {
            Expr::Reg(r) if locked[*r as usize] => Some(*r),
            Expr::Bin(_, a, b) => a
                .first_locked_reg(locked)
                .or_else(|| b.first_locked_reg(locked)),
            _ => None,
        }
    }
}

impl From<Value> for Expr {
    fn from(v: Value) -> Self {
        Expr::Const(v)
    }
}

/// Maximum expression / statement nesting accepted when decoding program
/// bytes — far above anything a workload generator emits, low enough that
/// a corrupted snapshot cannot drive the decoder's recursion off the
/// stack.
pub(crate) const MAX_DECODE_DEPTH: usize = 64;

fn decode_expr(r: &mut WireReader<'_>, depth: usize) -> Result<Expr, WireError> {
    if depth == 0 {
        return Err(WireError::Invalid("expression nesting too deep"));
    }
    Ok(match r.u8()? {
        0 => Expr::Const(r.i64()?),
        1 => Expr::Reg(r.u8()?),
        2 => Expr::PeIndex,
        3 => Expr::NumPes,
        4 => Expr::Param(r.u8()?),
        5 => Expr::Bin(
            BinOp::decode(r)?,
            Box::new(decode_expr(r, depth - 1)?),
            Box::new(decode_expr(r, depth - 1)?),
        ),
        6 => Expr::Clock,
        _ => return Err(WireError::Invalid("expression tag")),
    })
}

impl Wire for Expr {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            Expr::Const(v) => {
                w.u8(0);
                w.i64(*v);
            }
            Expr::Reg(reg) => {
                w.u8(1);
                w.u8(*reg);
            }
            Expr::PeIndex => w.u8(2),
            Expr::NumPes => w.u8(3),
            Expr::Param(i) => {
                w.u8(4);
                w.u8(*i);
            }
            Expr::Bin(op, a, b) => {
                w.u8(5);
                op.encode(w);
                a.encode(w);
                b.encode(w);
            }
            Expr::Clock => w.u8(6),
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        decode_expr(r, MAX_DECODE_DEPTH)
    }
}

impl Wire for BinOp {
    fn encode(&self, w: &mut WireWriter) {
        w.u8(match self {
            BinOp::Add => 0,
            BinOp::Sub => 1,
            BinOp::Mul => 2,
            BinOp::Div => 3,
            BinOp::Rem => 4,
            BinOp::Min => 5,
            BinOp::Max => 6,
            BinOp::Hash => 7,
        });
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8()? {
            0 => BinOp::Add,
            1 => BinOp::Sub,
            2 => BinOp::Mul,
            3 => BinOp::Div,
            4 => BinOp::Rem,
            5 => BinOp::Min,
            6 => BinOp::Max,
            7 => BinOp::Hash,
            _ => return Err(WireError::Invalid("binary-operator tag")),
        })
    }
}

impl Wire for CmpOp {
    fn encode(&self, w: &mut WireWriter) {
        w.u8(match self {
            CmpOp::Lt => 0,
            CmpOp::Le => 1,
            CmpOp::Eq => 2,
            CmpOp::Ne => 3,
            CmpOp::Ge => 4,
            CmpOp::Gt => 5,
        });
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(match r.u8()? {
            0 => CmpOp::Lt,
            1 => CmpOp::Le,
            2 => CmpOp::Eq,
            3 => CmpOp::Ne,
            4 => CmpOp::Ge,
            5 => CmpOp::Gt,
            _ => return Err(WireError::Invalid("comparison-operator tag")),
        })
    }
}

impl Wire for Cond {
    fn encode(&self, w: &mut WireWriter) {
        self.op.encode(w);
        self.lhs.encode(w);
        self.rhs.encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            op: CmpOp::decode(r)?,
            lhs: Expr::decode(r)?,
            rhs: Expr::decode(r)?,
        })
    }
}

/// Evaluation context handed to [`Expr::eval`].
#[derive(Debug, Clone, Copy)]
pub struct EvalCtx<'a> {
    /// The PE's register file.
    pub regs: &'a [Value; NUM_REGS],
    /// The PE's index.
    pub pe: PeId,
    /// Number of PEs.
    pub n_pes: usize,
    /// Program parameters.
    pub params: &'a [Value],
    /// Current machine cycle, read by [`Expr::Clock`].
    pub clock: Value,
}

/// Comparison operators for [`Cond`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `>=`
    Ge,
    /// `>`
    Gt,
}

/// A boolean condition over two expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cond {
    /// Comparison operator.
    pub op: CmpOp,
    /// Left-hand side.
    pub lhs: Expr,
    /// Right-hand side.
    pub rhs: Expr,
}

impl Cond {
    /// Builds a condition.
    #[must_use]
    pub fn new(lhs: impl Into<Expr>, op: CmpOp, rhs: impl Into<Expr>) -> Self {
        Self {
            op,
            lhs: lhs.into(),
            rhs: rhs.into(),
        }
    }

    /// Evaluates the condition.
    #[must_use]
    pub fn eval(&self, ctx: &EvalCtx<'_>) -> bool {
        let (a, b) = (self.lhs.eval(ctx), self.rhs.eval(ctx));
        match self.op {
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Ge => a >= b,
            CmpOp::Gt => a > b,
        }
    }

    /// First locked register read by either side.
    #[must_use]
    pub fn first_locked_reg(&self, locked: &[bool; NUM_REGS]) -> Option<Reg> {
        self.lhs
            .first_locked_reg(locked)
            .or_else(|| self.rhs.first_locked_reg(locked))
    }
}

/// A block of statements, cheaply shareable between frames (atomically
/// refcounted so interpreter contexts can cross engine threads).
pub type Body = Arc<[Op]>;

/// Builds a [`Body`] from statements.
#[must_use]
pub fn body(ops: Vec<Op>) -> Body {
    Arc::from(ops)
}

/// One program statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// `n` instructions of register-to-register work.
    Compute(u32),
    /// A data-dependent amount of local work: `max(0, amount)`
    /// instructions (lets workload generators scale inner-loop work with
    /// the current problem row, e.g. TRED2's shrinking submatrix).
    ComputeVar {
        /// Instruction count expression (clamped at 0 and `u32::MAX`).
        amount: Expr,
    },
    /// `n` memory references satisfied by the PE-local cache (§3.2's
    /// private data and program text; 1 instruction each).
    PrivateRef(u32),
    /// Load a shared word into `dst`, which stays locked until the reply
    /// arrives (§3.5). The PE continues executing — prefetching.
    Load {
        /// Address expression.
        addr: Expr,
        /// Destination register (locked until the reply).
        dst: Reg,
    },
    /// Store a shared word (asynchronous; acknowledged by the network).
    Store {
        /// Address expression.
        addr: Expr,
        /// Value expression.
        value: Expr,
    },
    /// The §2.2 fetch-and-add; `dst` (if any) is locked until the old value
    /// returns.
    FetchAdd {
        /// Address expression.
        addr: Expr,
        /// Increment expression.
        delta: Expr,
        /// Optional destination for the fetched old value.
        dst: Option<Reg>,
    },
    /// The general §2.4 fetch-and-phi.
    FetchPhi {
        /// Associative operator.
        op: PhiOp,
        /// Address expression.
        addr: Expr,
        /// Operand expression.
        operand: Expr,
        /// Optional destination for the fetched old value.
        dst: Option<Reg>,
    },
    /// Join all PEs: arrival is a combinable fetch-and-add on a shared
    /// barrier word; the PE idles until every PE has arrived.
    Barrier,
    /// Wait until all of this PE's outstanding requests have completed
    /// (memory fence; used before timing boundaries).
    Fence,
    /// `reg <- value`.
    Set {
        /// Destination register.
        reg: Reg,
        /// Value expression.
        value: Expr,
    },
    /// `for reg in from..to { body }` (1 instruction of loop control per
    /// iteration).
    For {
        /// Loop register.
        reg: Reg,
        /// Inclusive start.
        from: Expr,
        /// Exclusive end.
        to: Expr,
        /// Loop body.
        body: Body,
    },
    /// The fetch-and-add self-scheduled loop:
    /// `while (reg = F&A(counter, 1)) < limit { body }`.
    SelfSched {
        /// Register receiving each claimed index.
        reg: Reg,
        /// Address of the shared counter.
        counter: Expr,
        /// Exclusive upper bound.
        limit: Expr,
        /// Loop body.
        body: Body,
    },
    /// Two-way branch (1 instruction for the test).
    If {
        /// Branch condition.
        cond: Cond,
        /// Taken branch.
        then_ops: Body,
        /// Untaken branch.
        else_ops: Body,
    },
    /// Stop this PE.
    Halt,
    /// Park this context until the machine clock reaches `cycle`. The
    /// target is evaluated once, when the instruction is fetched — so
    /// `WaitUntil(Clock + k)` sleeps `k` cycles — and a target already
    /// in the past costs one instruction and continues. The open-loop
    /// pacing primitive: a serving worker holds a claimed request here
    /// until its scheduled arrival.
    WaitUntil {
        /// Absolute wake cycle expression, evaluated at fetch.
        cycle: Expr,
    },
}

fn encode_op(op: &Op, w: &mut WireWriter) {
    match op {
        Op::Compute(n) => {
            w.u8(0);
            w.u32(*n);
        }
        Op::ComputeVar { amount } => {
            w.u8(1);
            amount.encode(w);
        }
        Op::PrivateRef(n) => {
            w.u8(2);
            w.u32(*n);
        }
        Op::Load { addr, dst } => {
            w.u8(3);
            addr.encode(w);
            w.u8(*dst);
        }
        Op::Store { addr, value } => {
            w.u8(4);
            addr.encode(w);
            value.encode(w);
        }
        Op::FetchAdd { addr, delta, dst } => {
            w.u8(5);
            addr.encode(w);
            delta.encode(w);
            dst.encode(w);
        }
        Op::FetchPhi {
            op,
            addr,
            operand,
            dst,
        } => {
            w.u8(6);
            op.encode(w);
            addr.encode(w);
            operand.encode(w);
            dst.encode(w);
        }
        Op::Barrier => w.u8(7),
        Op::Fence => w.u8(8),
        Op::Set { reg, value } => {
            w.u8(9);
            w.u8(*reg);
            value.encode(w);
        }
        Op::For {
            reg,
            from,
            to,
            body,
        } => {
            w.u8(10);
            w.u8(*reg);
            from.encode(w);
            to.encode(w);
            encode_body(body, w);
        }
        Op::SelfSched {
            reg,
            counter,
            limit,
            body,
        } => {
            w.u8(11);
            w.u8(*reg);
            counter.encode(w);
            limit.encode(w);
            encode_body(body, w);
        }
        Op::If {
            cond,
            then_ops,
            else_ops,
        } => {
            w.u8(12);
            cond.encode(w);
            encode_body(then_ops, w);
            encode_body(else_ops, w);
        }
        Op::Halt => w.u8(13),
        Op::WaitUntil { cycle } => {
            w.u8(14);
            cycle.encode(w);
        }
    }
}

fn decode_op(r: &mut WireReader<'_>, depth: usize) -> Result<Op, WireError> {
    Ok(match r.u8()? {
        0 => Op::Compute(r.u32()?),
        1 => Op::ComputeVar {
            amount: Expr::decode(r)?,
        },
        2 => Op::PrivateRef(r.u32()?),
        3 => Op::Load {
            addr: Expr::decode(r)?,
            dst: r.u8()?,
        },
        4 => Op::Store {
            addr: Expr::decode(r)?,
            value: Expr::decode(r)?,
        },
        5 => Op::FetchAdd {
            addr: Expr::decode(r)?,
            delta: Expr::decode(r)?,
            dst: Option::decode(r)?,
        },
        6 => Op::FetchPhi {
            op: PhiOp::decode(r)?,
            addr: Expr::decode(r)?,
            operand: Expr::decode(r)?,
            dst: Option::decode(r)?,
        },
        7 => Op::Barrier,
        8 => Op::Fence,
        9 => Op::Set {
            reg: r.u8()?,
            value: Expr::decode(r)?,
        },
        10 => Op::For {
            reg: r.u8()?,
            from: Expr::decode(r)?,
            to: Expr::decode(r)?,
            body: decode_body(r, depth)?,
        },
        11 => Op::SelfSched {
            reg: r.u8()?,
            counter: Expr::decode(r)?,
            limit: Expr::decode(r)?,
            body: decode_body(r, depth)?,
        },
        12 => Op::If {
            cond: Cond::decode(r)?,
            then_ops: decode_body(r, depth)?,
            else_ops: decode_body(r, depth)?,
        },
        13 => Op::Halt,
        14 => Op::WaitUntil {
            cycle: Expr::decode(r)?,
        },
        _ => return Err(WireError::Invalid("statement tag")),
    })
}

/// Serializes a statement block as a full inline tree (sharing via `Arc`
/// is a memory optimization, not part of program identity).
pub fn encode_body(body: &Body, w: &mut WireWriter) {
    w.usize(body.len());
    for op in body.iter() {
        encode_op(op, w);
    }
}

/// Decodes a statement block written by [`encode_body`].
///
/// # Errors
///
/// Returns a [`WireError`] on truncated or malformed bytes, or when the
/// block nesting exceeds the decoder's recursion bound.
pub fn decode_body(r: &mut WireReader<'_>, depth: usize) -> Result<Body, WireError> {
    if depth == 0 {
        return Err(WireError::Invalid("statement nesting too deep"));
    }
    let len = r.seq_len()?;
    let mut ops = Vec::with_capacity(len);
    for _ in 0..len {
        ops.push(decode_op(r, depth - 1)?);
    }
    Ok(Arc::from(ops))
}

impl Wire for Op {
    fn encode(&self, w: &mut WireWriter) {
        encode_op(self, w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        decode_op(r, MAX_DECODE_DEPTH)
    }
}

impl Wire for Program {
    fn encode(&self, w: &mut WireWriter) {
        encode_body(&self.ops, w);
        self.params.encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            ops: decode_body(r, MAX_DECODE_DEPTH)?,
            params: Vec::decode(r)?,
        })
    }
}

/// Error marker for runaway control-flow nesting in the interpreter.
///
/// Well-formed programs nest loops a handful deep; hitting the limit means
/// a generator bug (e.g. a self-referential body), so the interpreter
/// panics with this message rather than exhausting memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameLimitExceeded;

impl FrameLimitExceeded {
    /// Maximum control-frame depth.
    pub const LIMIT: usize = 1024;
}

impl std::fmt::Display for FrameLimitExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "program nesting exceeded {} frames", Self::LIMIT)
    }
}

/// A complete per-PE program: a statement block plus parameters.
///
/// # Example
///
/// ```
/// use ultracomputer::program::{body, Expr, Op, Program};
///
/// // Every PE claims distinct indices from a shared counter at address 0
/// // and stores its PE number into the claimed slot of an array at 100.
/// let prog = Program::new(
///     body(vec![
///         Op::SelfSched {
///             reg: 0,
///             counter: Expr::Const(0),
///             limit: Expr::Param(0),
///             body: body(vec![Op::Store {
///                 addr: Expr::add(Expr::Const(100), Expr::Reg(0)),
///                 value: Expr::PeIndex,
///             }]),
///         },
///         Op::Halt,
///     ]),
///     vec![64], // Param(0): 64 items
/// );
/// assert_eq!(prog.params[0], 64);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Top-level statement block.
    pub ops: Body,
    /// Parameters referenced by [`Expr::Param`].
    pub params: Vec<Value>,
}

impl Program {
    /// Creates a program.
    #[must_use]
    pub fn new(ops: Body, params: Vec<Value>) -> Self {
        Self { ops, params }
    }

    /// A program that halts immediately.
    #[must_use]
    pub fn empty() -> Self {
        Self::new(body(vec![Op::Halt]), Vec::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(regs: &'a [Value; NUM_REGS], params: &'a [Value]) -> EvalCtx<'a> {
        EvalCtx {
            regs,
            pe: PeId(3),
            n_pes: 8,
            params,
            clock: 777,
        }
    }

    #[test]
    fn expr_arithmetic() {
        let regs = [0; NUM_REGS];
        let c = ctx(&regs, &[10]);
        assert_eq!(Expr::add(2, 3).eval(&c), 5);
        assert_eq!(Expr::sub(2, 3).eval(&c), -1);
        assert_eq!(Expr::mul(4, 5).eval(&c), 20);
        assert_eq!(Expr::div(20, 6).eval(&c), 3);
        assert_eq!(Expr::rem(20, 6).eval(&c), 2);
        assert_eq!(Expr::min(2, 9).eval(&c), 2);
        assert_eq!(Expr::max(2, 9).eval(&c), 9);
        assert_eq!(Expr::PeIndex.eval(&c), 3);
        assert_eq!(Expr::NumPes.eval(&c), 8);
        assert_eq!(Expr::Param(0).eval(&c), 10);
        assert_eq!(Expr::Param(9).eval(&c), 0, "missing params read 0");
        assert_eq!(Expr::Clock.eval(&c), 777, "clock reads the cycle");
    }

    #[test]
    fn division_by_zero_yields_zero() {
        let regs = [0; NUM_REGS];
        let c = ctx(&regs, &[]);
        assert_eq!(Expr::div(5, 0).eval(&c), 0);
        assert_eq!(Expr::rem(5, 0).eval(&c), 0);
    }

    #[test]
    fn registers_read_through_context() {
        let mut regs = [0; NUM_REGS];
        regs[2] = 42;
        let c = ctx(&regs, &[]);
        assert_eq!(Expr::Reg(2).eval(&c), 42);
    }

    #[test]
    fn locked_register_detection() {
        let mut locked = [false; NUM_REGS];
        locked[5] = true;
        let e = Expr::add(Expr::Reg(1), Expr::mul(Expr::Reg(5), 2));
        assert_eq!(e.first_locked_reg(&locked), Some(5));
        let e = Expr::add(Expr::Reg(1), 2);
        assert_eq!(e.first_locked_reg(&locked), None);
        let cond = Cond::new(Expr::Reg(5), CmpOp::Lt, 10);
        assert_eq!(cond.first_locked_reg(&locked), Some(5));
    }

    #[test]
    fn cond_operators() {
        let regs = [0; NUM_REGS];
        let c = ctx(&regs, &[]);
        assert!(Cond::new(1, CmpOp::Lt, 2).eval(&c));
        assert!(Cond::new(2, CmpOp::Le, 2).eval(&c));
        assert!(Cond::new(2, CmpOp::Eq, 2).eval(&c));
        assert!(Cond::new(1, CmpOp::Ne, 2).eval(&c));
        assert!(Cond::new(2, CmpOp::Ge, 2).eval(&c));
        assert!(Cond::new(3, CmpOp::Gt, 2).eval(&c));
        assert!(!Cond::new(3, CmpOp::Lt, 2).eval(&c));
    }

    #[test]
    fn program_construction() {
        let p = Program::empty();
        assert_eq!(p.ops.len(), 1);
        assert!(matches!(p.ops[0], Op::Halt));
    }

    #[test]
    fn hash_is_deterministic_nonnegative_and_spreads() {
        let regs = [0; NUM_REGS];
        let c = ctx(&regs, &[]);
        let mut seen = std::collections::HashSet::new();
        for i in 0..200 {
            let a = Expr::hash(i, 7).eval(&c);
            let b = Expr::hash(i, 7).eval(&c);
            assert_eq!(a, b, "hash must be deterministic");
            assert!(a >= 0, "hash must be usable as an address");
            seen.insert(a % 64);
        }
        assert!(seen.len() > 48, "hash must spread: {} buckets", seen.len());
    }

    #[test]
    fn programs_round_trip_through_wire() {
        let prog = Program::new(
            body(vec![
                Op::Set {
                    reg: 1,
                    value: Expr::add(Expr::PeIndex, Expr::Param(0)),
                },
                Op::SelfSched {
                    reg: 0,
                    counter: Expr::Const(0),
                    limit: Expr::Param(0),
                    body: body(vec![
                        Op::If {
                            cond: Cond::new(Expr::Reg(0), CmpOp::Lt, 10),
                            then_ops: body(vec![Op::FetchAdd {
                                addr: Expr::hash(Expr::Reg(0), 7),
                                delta: Expr::Const(1),
                                dst: Some(2),
                            }]),
                            else_ops: body(vec![Op::Compute(3)]),
                        },
                        Op::Barrier,
                    ]),
                },
                Op::WaitUntil {
                    cycle: Expr::add(Expr::Clock, 100),
                },
                Op::Store {
                    addr: Expr::Const(50),
                    value: Expr::Clock,
                },
                Op::Fence,
                Op::Halt,
            ]),
            vec![64, -3],
        );
        let mut w = WireWriter::new();
        prog.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let twin = Program::decode(&mut r).expect("decode");
        assert!(r.is_empty());
        assert_eq!(prog, twin);
    }

    #[test]
    fn pathological_nesting_is_rejected_not_a_stack_overflow() {
        // A byte stream of nothing but `Bin` tags would recurse once per
        // byte without the depth guard.
        let bytes = vec![5u8; 10_000];
        let mut r = WireReader::new(&bytes);
        assert_eq!(
            Expr::decode(&mut r),
            Err(WireError::Invalid("expression nesting too deep"))
        );
    }

    #[test]
    fn hash_differs_across_operands() {
        let regs = [0; NUM_REGS];
        let c = ctx(&regs, &[]);
        // hash(a + b) folds the sum, so only the sum matters — verify the
        // documented behaviour both ways.
        assert_eq!(Expr::hash(3, 4).eval(&c), Expr::hash(4, 3).eval(&c));
        assert_ne!(Expr::hash(3, 4).eval(&c), Expr::hash(3, 5).eval(&c));
    }
}

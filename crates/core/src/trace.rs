//! Execution tracing for debugging machine runs.
//!
//! The paper's group debugged parallel programs on their simulator
//! (§5: "to develop methodologies for writing and debugging parallel
//! programs"); this module is the modern equivalent: an optional,
//! bounded event trace the machine records as it runs. Disabled by
//! default — tracing costs nothing until [`Trace::enabled`] is set.

use ultra_net::message::MsgKind;
use ultra_sim::{Cycle, PeId};

/// One recorded machine event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A context issued a memory request.
    Issue {
        /// Cycle of issue.
        cycle: Cycle,
        /// Issuing virtual PE.
        pe: PeId,
        /// Request kind.
        kind: MsgKind,
        /// Flat virtual address.
        vaddr: usize,
    },
    /// A reply was delivered to a context.
    Reply {
        /// Cycle of delivery.
        cycle: Cycle,
        /// Receiving virtual PE.
        pe: PeId,
        /// Round-trip latency in cycles.
        latency: Cycle,
    },
    /// A barrier generation released all waiters.
    BarrierRelease {
        /// Cycle of release.
        cycle: Cycle,
        /// Generation that completed.
        generation: u64,
    },
    /// A context ran to completion.
    Halt {
        /// Cycle of halt.
        cycle: Cycle,
        /// Halting virtual PE.
        pe: PeId,
    },
}

impl TraceEvent {
    /// The cycle at which the event happened.
    #[must_use]
    pub fn cycle(&self) -> Cycle {
        match self {
            TraceEvent::Issue { cycle, .. }
            | TraceEvent::Reply { cycle, .. }
            | TraceEvent::BarrierRelease { cycle, .. }
            | TraceEvent::Halt { cycle, .. } => *cycle,
        }
    }
}

/// A bounded event recorder. When full, the *oldest* events are dropped
/// (ring-buffer semantics), so the tail of a long run is always visible.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Whether events are being recorded.
    pub enabled: bool,
    capacity: usize,
    events: std::collections::VecDeque<TraceEvent>,
    dropped: u64,
}

impl Trace {
    /// Creates a disabled trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables recording with room for `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn enable(&mut self, capacity: usize) {
        assert!(capacity > 0, "trace needs capacity");
        self.enabled = true;
        self.capacity = capacity;
    }

    /// Records an event (no-op while disabled).
    pub fn record(&mut self, event: TraceEvent) {
        if !self.enabled {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// The recorded events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// How many events were discarded to honour the capacity.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn halt(cycle: Cycle) -> TraceEvent {
        TraceEvent::Halt { cycle, pe: PeId(0) }
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::new();
        t.record(halt(1));
        assert!(t.is_empty());
    }

    #[test]
    fn ring_keeps_the_tail() {
        let mut t = Trace::new();
        t.enable(3);
        for c in 0..10 {
            t.record(halt(c));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 7);
        let cycles: Vec<Cycle> = t.events().map(TraceEvent::cycle).collect();
        assert_eq!(cycles, vec![7, 8, 9]);
    }

    #[test]
    fn overfilled_ring_drops_exactly_the_overflow() {
        let capacity = 64;
        let recorded = 1000;
        let mut t = Trace::new();
        t.enable(capacity);
        for c in 0..recorded {
            t.record(halt(c));
        }
        assert_eq!(t.len(), capacity);
        assert_eq!(t.dropped(), (recorded as usize - capacity) as u64);
        // The retained window is exactly the newest `capacity` events.
        let cycles: Vec<Cycle> = t.events().map(TraceEvent::cycle).collect();
        assert_eq!(cycles[0], recorded - capacity as Cycle);
        assert_eq!(*cycles.last().unwrap(), recorded - 1);
    }

    #[test]
    fn retained_tail_stays_cycle_monotone() {
        let mut t = Trace::new();
        t.enable(7);
        // Mixed event kinds, strictly increasing cycles, far past capacity.
        for c in 0..200 {
            let e = match c % 4 {
                0 => halt(c),
                1 => TraceEvent::Reply {
                    cycle: c,
                    pe: PeId(1),
                    latency: 3,
                },
                2 => TraceEvent::BarrierRelease {
                    cycle: c,
                    generation: c / 4,
                },
                _ => TraceEvent::Issue {
                    cycle: c,
                    pe: PeId(2),
                    kind: MsgKind::Load,
                    vaddr: 9,
                },
            };
            t.record(e);
        }
        let cycles: Vec<Cycle> = t.events().map(TraceEvent::cycle).collect();
        assert!(
            cycles.windows(2).all(|w| w[0] <= w[1]),
            "retained tail must stay in recording order: {cycles:?}"
        );
        assert_eq!(cycles.len() as u64 + t.dropped(), 200);
    }

    #[test]
    fn event_cycle_accessor_covers_variants() {
        assert_eq!(
            TraceEvent::Issue {
                cycle: 5,
                pe: PeId(1),
                kind: MsgKind::Load,
                vaddr: 7
            }
            .cycle(),
            5
        );
        assert_eq!(
            TraceEvent::Reply {
                cycle: 6,
                pe: PeId(1),
                latency: 16
            }
            .cycle(),
            6
        );
        assert_eq!(
            TraceEvent::BarrierRelease {
                cycle: 7,
                generation: 2
            }
            .cycle(),
            7
        );
    }
}

//! A dependency-free service-metrics registry with Prometheus-style
//! text exposition.
//!
//! The simulator-side recorders in [`crate::series`] observe *simulated*
//! time; this module observes the **service wrapped around the
//! simulator** — queue depths, cache hit rates, worker utilization —
//! in wall-clock time. Three instrument kinds, all backed by relaxed
//! atomics so the hot path (a job finishing, a queue push) costs one
//! `fetch_add` and never takes a lock:
//!
//! * [`Counter`] — a monotone `u64` event count;
//! * [`Gauge`] — a signed instantaneous level (queue depth, cache size);
//! * [`AtomicHistogram`] — power-of-two log bins over `u64`
//!   observations, for multi-writer latency recording without locks.
//!
//! Handles are `Arc`s: callers register once (under a short registry
//! lock) and then update lock-free forever after. The read side is
//! *snapshot-consistent where it matters*: a histogram snapshot derives
//! its count from the bins it actually read, so cumulative bucket counts
//! never disagree with the total even while writers race.
//!
//! [`MetricsRegistry::render`] emits the Prometheus text exposition
//! format (`# HELP`/`# TYPE` headers, `name{label="v"} value` samples,
//! `_bucket`/`_sum`/`_count` histogram series) through [`PromWriter`],
//! which callers can also drive directly to append families the registry
//! does not own (e.g. summaries merged from `ultra_sim` histograms).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing event counter (relaxed atomics).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current count.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous level (queue depth, cache size).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A zeroed gauge.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    pub fn sub(&self, n: i64) {
        self.add(-n);
    }

    /// Overwrites the level.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// The current level.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Log-bin count: values of equal bit length share a bin, so bin `i`
/// holds `[2^(i-1), 2^i)` (bin 0 holds exactly 0). 65 bins cover `u64`.
const HISTO_BINS: usize = 65;

/// A lock-free log-bin histogram over `u64` observations.
///
/// Multiple writers record concurrently with relaxed `fetch_add`; the
/// read side ([`AtomicHistogram::snapshot`]) derives its total from the
/// bins it read, so the snapshot is internally consistent even while
/// recording continues.
#[derive(Debug)]
pub struct AtomicHistogram {
    bins: Box<[AtomicU64; HISTO_BINS]>,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self {
            bins: Box::new([0u64; HISTO_BINS].map(AtomicU64::new)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl AtomicHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        let bin = (64 - v.leading_zeros()) as usize;
        self.bins[bin].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// A consistent read of the histogram: cumulative `(upper_edge,
    /// count_at_or_below)` buckets up to the highest occupied bin, plus
    /// the total count (the sum of the bins read), sum and max.
    #[must_use]
    pub fn snapshot(&self) -> HistoSnapshot {
        let mut buckets = Vec::new();
        let mut cumulative = 0;
        let mut highest = 0;
        let raw: Vec<u64> = self
            .bins
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        for (i, &c) in raw.iter().enumerate() {
            if c > 0 {
                highest = i;
            }
        }
        for (i, &c) in raw.iter().enumerate().take(highest + 1) {
            cumulative += c;
            // Upper edge of bin i: 2^i - 1 (bin 64 tops out at u64::MAX).
            let le = if i >= 64 { u64::MAX } else { (1u64 << i) - 1 };
            buckets.push((le, cumulative));
        }
        HistoSnapshot {
            count: cumulative,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A point-in-time read of an [`AtomicHistogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoSnapshot {
    /// Total observations (always equals the last bucket's cumulative
    /// count).
    pub count: u64,
    /// Sum of all observations (advisory: read separately from the
    /// bins, so it may lag by in-flight records).
    pub sum: u64,
    /// Largest observation seen.
    pub max: u64,
    /// Cumulative `(upper_edge, count_at_or_below)` pairs, ascending.
    pub buckets: Vec<(u64, u64)>,
}

/// What kind of instrument a family holds (drives the `# TYPE` line).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone counter.
    Counter,
    /// Instantaneous gauge.
    Gauge,
    /// Log-bin histogram.
    Histogram,
}

impl MetricKind {
    /// The Prometheus `# TYPE` keyword.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Counter => "counter",
            Self::Gauge => "gauge",
            Self::Histogram => "histogram",
        }
    }
}

/// One family's metadata.
struct Family {
    kind: MetricKind,
    help: String,
    /// Exposition-time divisor (e.g. `1e6` to render a counter kept in
    /// microseconds as seconds, per Prometheus naming conventions). A
    /// divisor rather than a multiplier so round unit conversions stay
    /// exact in floating point (`us / 1e6`, not `us * 1e-6`).
    scale: f64,
}

/// Registry interior: instruments keyed by `(family name, rendered
/// label block)`.
#[derive(Default)]
struct RegistryInner {
    families: BTreeMap<String, Family>,
    counters: BTreeMap<(String, String), Arc<Counter>>,
    gauges: BTreeMap<(String, String), Arc<Gauge>>,
    histograms: BTreeMap<(String, String), Arc<AtomicHistogram>>,
}

/// The service-metrics registry (see the module docs).
///
/// Registration takes a short lock; the returned handles update
/// lock-free. Registering the same `(name, labels)` twice returns the
/// same instrument.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn family(inner: &mut RegistryInner, name: &str, kind: MetricKind, help: &str, scale: f64) {
        let fam = inner.families.entry(name.to_owned()).or_insert(Family {
            kind,
            help: help.to_owned(),
            scale,
        });
        assert!(
            fam.kind == kind,
            "metric family `{name}` registered as {} and {}",
            fam.kind.as_str(),
            kind.as_str()
        );
    }

    /// Registers (or fetches) a counter.
    ///
    /// # Panics
    ///
    /// Panics if `name` was already registered with a different kind.
    #[must_use]
    pub fn counter(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Arc<Counter> {
        self.scaled_counter(name, labels, help, 1.0)
    }

    /// Registers a counter whose stored value is divided by `scale` at
    /// exposition time (e.g. accumulate microseconds, pass `1e6`,
    /// expose seconds).
    ///
    /// # Panics
    ///
    /// Panics if `name` was already registered with a different kind.
    #[must_use]
    pub fn scaled_counter(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
        scale: f64,
    ) -> Arc<Counter> {
        let mut inner = self.inner.lock().expect("registry poisoned");
        Self::family(&mut inner, name, MetricKind::Counter, help, scale);
        let key = (name.to_owned(), render_labels(labels));
        Arc::clone(inner.counters.entry(key).or_default())
    }

    /// Registers (or fetches) a gauge.
    ///
    /// # Panics
    ///
    /// Panics if `name` was already registered with a different kind.
    #[must_use]
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Arc<Gauge> {
        let mut inner = self.inner.lock().expect("registry poisoned");
        Self::family(&mut inner, name, MetricKind::Gauge, help, 1.0);
        let key = (name.to_owned(), render_labels(labels));
        Arc::clone(inner.gauges.entry(key).or_default())
    }

    /// Registers (or fetches) a log-bin histogram.
    ///
    /// # Panics
    ///
    /// Panics if `name` was already registered with a different kind.
    #[must_use]
    pub fn histogram(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
    ) -> Arc<AtomicHistogram> {
        let mut inner = self.inner.lock().expect("registry poisoned");
        Self::family(&mut inner, name, MetricKind::Histogram, help, 1.0);
        let key = (name.to_owned(), render_labels(labels));
        Arc::clone(inner.histograms.entry(key).or_default())
    }

    /// Renders the Prometheus text exposition of every registered
    /// instrument (families sorted by name, samples by label block).
    #[must_use]
    pub fn render(&self) -> String {
        self.render_with(|_| {})
    }

    /// Like [`MetricsRegistry::render`], then hands the writer to
    /// `extra` so callers can append families the registry does not own
    /// (e.g. merged latency summaries).
    #[must_use]
    pub fn render_with(&self, extra: impl FnOnce(&mut PromWriter)) -> String {
        let inner = self.inner.lock().expect("registry poisoned");
        let mut w = PromWriter::new();
        for (name, fam) in &inner.families {
            w.family(name, fam.kind.as_str(), &fam.help);
            match fam.kind {
                MetricKind::Counter => {
                    for ((n, lb), c) in inner.counters.range(range_of(name)) {
                        debug_assert_eq!(n, name);
                        w.sample_pre(name, lb, c.get() as f64 / fam.scale);
                    }
                }
                MetricKind::Gauge => {
                    for ((_, lb), g) in inner.gauges.range(range_of(name)) {
                        w.sample_pre(name, lb, g.get() as f64 / fam.scale);
                    }
                }
                MetricKind::Histogram => {
                    for ((_, lb), h) in inner.histograms.range(range_of(name)) {
                        w.histogram_pre(name, lb, &h.snapshot());
                    }
                }
            }
        }
        drop(inner);
        extra(&mut w);
        w.finish()
    }

    /// Every registered instrument flattened to `(name, label_block,
    /// kind, value)` rows — the JSON-artifact view of the registry.
    /// Histograms contribute their snapshot separately via
    /// [`MetricsRegistry::histogram_rows`].
    #[must_use]
    pub fn scalar_rows(&self) -> Vec<(String, String, MetricKind, f64)> {
        let inner = self.inner.lock().expect("registry poisoned");
        let mut rows = Vec::new();
        for ((name, lb), c) in &inner.counters {
            let scale = inner.families[name].scale;
            rows.push((
                name.clone(),
                lb.clone(),
                MetricKind::Counter,
                c.get() as f64 / scale,
            ));
        }
        for ((name, lb), g) in &inner.gauges {
            rows.push((name.clone(), lb.clone(), MetricKind::Gauge, g.get() as f64));
        }
        rows
    }

    /// Every registered histogram as `(name, label_block, snapshot)`.
    #[must_use]
    pub fn histogram_rows(&self) -> Vec<(String, String, HistoSnapshot)> {
        let inner = self.inner.lock().expect("registry poisoned");
        inner
            .histograms
            .iter()
            .map(|((name, lb), h)| (name.clone(), lb.clone(), h.snapshot()))
            .collect()
    }
}

/// The `BTreeMap` range covering one family's `(name, labels)` keys.
fn range_of(name: &str) -> std::ops::RangeInclusive<(String, String)> {
    (name.to_owned(), String::new())..=(name.to_owned(), "\u{10FFFF}".to_owned())
}

/// Escapes a label *value* per the exposition format (backslash, quote,
/// newline).
#[must_use]
pub fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders a label block — `{a="x",b="y"}` sorted by label name, or the
/// empty string when there are no labels.
#[must_use]
pub fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut sorted: Vec<_> = labels.to_vec();
    sorted.sort_unstable();
    let body: Vec<String> = sorted
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// Formats a sample value: integral floats render without a decimal
/// point, non-finite values collapse to 0 (the exposition format's
/// `NaN`/`+Inf` literals are legal but never useful here).
fn prom_num(v: f64) -> String {
    if !v.is_finite() {
        "0".to_owned()
    } else if v.fract() == 0.0 && v.abs() < 9e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// An incremental Prometheus text-exposition writer.
///
/// [`MetricsRegistry::render_with`] drives one for the registry's own
/// instruments and then lends it out, so service layers can append
/// families sourced elsewhere (merged `ultra_sim::stats::Histogram`
/// summaries, cache sizes read at exposition time).
#[derive(Debug, Default)]
pub struct PromWriter {
    out: String,
}

impl PromWriter {
    /// An empty document.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes the `# HELP` / `# TYPE` header for a family.
    pub fn family(&mut self, name: &str, kind: &str, help: &str) {
        // HELP text: the format escapes backslash and newline only.
        let help = help.replace('\\', "\\\\").replace('\n', "\\n");
        self.out.push_str(&format!("# HELP {name} {help}\n"));
        self.out.push_str(&format!("# TYPE {name} {kind}\n"));
    }

    /// Writes one sample with a pre-rendered label block.
    pub fn sample_pre(&mut self, name: &str, label_block: &str, value: f64) {
        self.out
            .push_str(&format!("{name}{label_block} {}\n", prom_num(value)));
    }

    /// Writes one sample, rendering `labels` in place.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        let lb = render_labels(labels);
        self.sample_pre(name, &lb, value);
    }

    /// Writes a histogram's `_bucket`/`_sum`/`_count` series from a
    /// snapshot, with a pre-rendered label block.
    pub fn histogram_pre(&mut self, name: &str, label_block: &str, snap: &HistoSnapshot) {
        for &(le, cum) in &snap.buckets {
            let with_le = splice_label(label_block, "le", &le.to_string());
            self.sample_pre(&format!("{name}_bucket"), &with_le, cum as f64);
        }
        let inf = splice_label(label_block, "le", "+Inf");
        self.sample_pre(&format!("{name}_bucket"), &inf, snap.count as f64);
        self.sample_pre(&format!("{name}_sum"), label_block, snap.sum as f64);
        self.sample_pre(&format!("{name}_count"), label_block, snap.count as f64);
    }

    /// Writes a summary family's quantile samples plus `_sum`/`_count`.
    /// `quantiles` pairs the `quantile` label value with the sample
    /// (already scaled to the exposed unit).
    pub fn summary(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        quantiles: &[(&str, f64)],
        sum: f64,
        count: u64,
    ) {
        let lb = render_labels(labels);
        for &(q, v) in quantiles {
            let with_q = splice_label(&lb, "quantile", q);
            self.sample_pre(name, &with_q, v);
        }
        self.sample_pre(&format!("{name}_sum"), &lb, sum);
        self.sample_pre(&format!("{name}_count"), &lb, count as f64);
    }

    /// The finished document.
    #[must_use]
    pub fn finish(self) -> String {
        self.out
    }
}

/// Inserts one more label into a rendered label block (used for `le` and
/// `quantile`, which attach per-sample rather than per-instrument).
fn splice_label(block: &str, key: &str, value: &str) -> String {
    let pair = format!("{key}=\"{}\"", escape_label(value));
    if block.is_empty() {
        format!("{{{pair}}}")
    } else {
        // `{a="x"}` → `{a="x",key="value"}`
        format!("{},{pair}}}", &block[..block.len() - 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counters_and_gauges_accumulate_atomically() {
        let r = MetricsRegistry::new();
        let c = r.counter("jobs_total", &[("status", "done")], "finished jobs");
        let g = r.gauge("queue_depth", &[], "queued jobs");
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                let g = Arc::clone(&g);
                thread::spawn(move || {
                    for _ in 0..1000 {
                        c.incr();
                        g.add(1);
                        g.sub(1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 4000);
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn re_registration_returns_the_same_instrument() {
        let r = MetricsRegistry::new();
        let a = r.counter("hits_total", &[("k", "v")], "hits");
        let b = r.counter("hits_total", &[("k", "v")], "hits");
        a.incr();
        assert_eq!(b.get(), 1);
        // Different labels are a different instrument in the family.
        let other = r.counter("hits_total", &[("k", "w")], "hits");
        assert_eq!(other.get(), 0);
    }

    #[test]
    #[should_panic(expected = "registered as counter and gauge")]
    fn kind_mismatch_panics() {
        let r = MetricsRegistry::new();
        let _c = r.counter("x_total", &[], "x");
        let _g = r.gauge("x_total", &[], "x");
    }

    #[test]
    fn histogram_snapshot_is_internally_consistent() {
        let h = AtomicHistogram::new();
        for v in [0u64, 1, 1, 7, 300, 5000] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 6);
        assert_eq!(snap.sum, 5309);
        assert_eq!(snap.max, 5000);
        // Cumulative counts end at the total, and are monotone.
        assert_eq!(snap.buckets.last().unwrap().1, snap.count);
        let mut prev = 0;
        for &(_, c) in &snap.buckets {
            assert!(c >= prev);
            prev = c;
        }
        // 0 lands in bin 0 (le 0); 1 in bin 1 (le 1); 7 in bin 3 (le 7).
        assert_eq!(snap.buckets[0], (0, 1));
        assert_eq!(snap.buckets[1], (1, 3));
        assert_eq!(snap.buckets[3], (7, 4));
    }

    #[test]
    fn exposition_has_headers_sorted_families_and_escaped_labels() {
        let r = MetricsRegistry::new();
        r.counter("zz_total", &[], "last family").add(3);
        r.gauge("aa_depth", &[("q", "a\"b\\c\nd")], "first family")
            .set(-2);
        r.histogram("lat_us", &[("w", "ticket")], "latency")
            .record(5);
        let text = r.render();
        let aa = text.find("# HELP aa_depth first family").unwrap();
        let lat = text.find("# TYPE lat_us histogram").unwrap();
        let zz = text.find("# TYPE zz_total counter").unwrap();
        assert!(aa < lat && lat < zz, "families must sort by name");
        assert!(text.contains("aa_depth{q=\"a\\\"b\\\\c\\nd\"} -2"));
        assert!(text.contains("zz_total 3"));
        assert!(text.contains("lat_us_bucket{w=\"ticket\",le=\"7\"} 1"));
        assert!(text.contains("lat_us_bucket{w=\"ticket\",le=\"+Inf\"} 1"));
        assert!(text.contains("lat_us_sum{w=\"ticket\"} 5"));
        assert!(text.contains("lat_us_count{w=\"ticket\"} 1"));
        // Every line is a header or a `name[{labels}] value` sample.
        for line in text.lines() {
            assert!(
                line.starts_with("# ") || line.rsplit_once(' ').is_some(),
                "malformed line: {line}"
            );
        }
    }

    #[test]
    fn scaled_counters_expose_in_the_scaled_unit() {
        let r = MetricsRegistry::new();
        let busy = r.scaled_counter(
            "busy_seconds_total",
            &[("worker", "0")],
            "busy wall-clock",
            1e6,
        );
        busy.add(2_500_000); // microseconds
        let text = r.render();
        assert!(
            text.contains("busy_seconds_total{worker=\"0\"} 2.5"),
            "{text}"
        );
    }

    #[test]
    fn summary_writer_emits_quantiles_sum_count() {
        let mut w = PromWriter::new();
        w.family("job_latency_seconds", "summary", "end-to-end");
        w.summary(
            "job_latency_seconds",
            &[("workload", "counter")],
            &[("0.5", 0.01), ("0.99", 0.5)],
            1.25,
            7,
        );
        let text = w.finish();
        assert!(text.contains("job_latency_seconds{workload=\"counter\",quantile=\"0.5\"} 0.01"));
        assert!(text.contains("job_latency_seconds{workload=\"counter\",quantile=\"0.99\"} 0.5"));
        assert!(text.contains("job_latency_seconds_sum{workload=\"counter\"} 1.25"));
        assert!(text.contains("job_latency_seconds_count{workload=\"counter\"} 7"));
    }

    #[test]
    fn label_blocks_sort_and_handle_empty() {
        assert_eq!(render_labels(&[]), "");
        assert_eq!(
            render_labels(&[("z", "1"), ("a", "2")]),
            "{a=\"2\",z=\"1\"}"
        );
        assert_eq!(splice_label("", "le", "7"), "{le=\"7\"}");
        assert_eq!(splice_label("{a=\"2\"}", "le", "7"), "{a=\"2\",le=\"7\"}");
    }
}

//! A bounded flight recorder for service-layer job events.
//!
//! The service keeps the last *K* structured events in a ring — cheap
//! enough to leave on in production — so that when a job errors or
//! times out, the operator gets the recent history *leading up to* the
//! failure, not just the failure line. Every event is recorded into the
//! ring regardless of level; the level only gates what is *emitted* to
//! stderr at record time (record-everything, filter-on-emit), so a
//! post-mortem [`FlightRecorder::dump`] always has the debug-level
//! breadcrumbs.
//!
//! Events render as NDJSON with sorted keys, matching the repo's other
//! hand-rolled JSON writers, so a dump is greppable and
//! `json.tool`-parseable line by line.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

use crate::json_escape;

/// Event severity, ordered `Debug < Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FlightLevel {
    /// Per-slice / per-checkpoint detail.
    Debug,
    /// Job lifecycle milestones.
    Info,
    /// Degraded but continuing (timeouts, budget exhaustion).
    Warn,
    /// Job or protocol failure.
    Error,
}

impl FlightLevel {
    /// The lowercase name used in rendered events and `--log-level`.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Debug => "debug",
            Self::Info => "info",
            Self::Warn => "warn",
            Self::Error => "error",
        }
    }

    /// Parses a `--log-level` argument (case-insensitive).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "debug" => Some(Self::Debug),
            "info" => Some(Self::Info),
            "warn" | "warning" => Some(Self::Warn),
            "error" => Some(Self::Error),
            _ => None,
        }
    }
}

/// One recorded service event.
#[derive(Debug, Clone)]
pub struct FlightEvent {
    /// Monotone sequence number (never reused, survives ring wrap).
    pub seq: u64,
    /// Microseconds since the recorder was created.
    pub at_us: u64,
    /// Severity.
    pub level: FlightLevel,
    /// Job id the event belongs to (empty for service-wide events).
    pub job: String,
    /// Short machine-readable event kind (`"result"`, `"cache"`, …).
    pub kind: String,
    /// Free-form human-readable detail.
    pub detail: String,
}

impl FlightEvent {
    /// Renders the event as one NDJSON line (sorted keys, no trailing
    /// newline).
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "{{\"at_us\": {}, \"detail\": \"{}\", \"event\": \"{}\", \"job\": \"{}\", \"level\": \"{}\", \"seq\": {}}}",
            self.at_us,
            json_escape(&self.detail),
            json_escape(&self.kind),
            json_escape(&self.job),
            self.level.as_str(),
            self.seq
        )
    }
}

/// Ring interior.
#[derive(Debug, Default)]
struct FlightState {
    next_seq: u64,
    dropped: u64,
    ring: VecDeque<FlightEvent>,
}

/// A lock-cheap bounded ring of the last K service events.
///
/// The only synchronization is one short mutex hold per record (push +
/// possible pop); rendering happens outside any lock held by other
/// recorders. Capacity is fixed at construction; once full, the oldest
/// event is dropped and counted in [`FlightRecorder::dropped`].
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    start: Instant,
    state: Mutex<FlightState>,
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "flight recorder capacity must be positive");
        Self {
            capacity,
            start: Instant::now(),
            state: Mutex::new(FlightState::default()),
        }
    }

    /// Microseconds since the recorder was created.
    #[must_use]
    pub fn now_us(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Records one event (always stored, whatever its level) and
    /// returns its rendered NDJSON line so callers can also emit it.
    pub fn record(&self, level: FlightLevel, job: &str, kind: &str, detail: &str) -> String {
        let at_us = self.now_us();
        let mut state = self.state.lock().expect("flight recorder poisoned");
        let ev = FlightEvent {
            seq: state.next_seq,
            at_us,
            level,
            job: job.to_owned(),
            kind: kind.to_owned(),
            detail: detail.to_owned(),
        };
        state.next_seq += 1;
        if state.ring.len() == self.capacity {
            state.ring.pop_front();
            state.dropped += 1;
        }
        let line = ev.render();
        state.ring.push_back(ev);
        line
    }

    /// The rendered NDJSON lines of every event currently in the ring,
    /// oldest first.
    #[must_use]
    pub fn dump(&self) -> Vec<String> {
        let state = self.state.lock().expect("flight recorder poisoned");
        state.ring.iter().map(FlightEvent::render).collect()
    }

    /// How many events the ring currently holds.
    #[must_use]
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .expect("flight recorder poisoned")
            .ring
            .len()
    }

    /// Whether the ring is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many events have been evicted to make room.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.state.lock().expect("flight recorder poisoned").dropped
    }

    /// The fixed capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_parse() {
        assert!(FlightLevel::Debug < FlightLevel::Info);
        assert!(FlightLevel::Info < FlightLevel::Warn);
        assert!(FlightLevel::Warn < FlightLevel::Error);
        assert_eq!(FlightLevel::parse("WARN"), Some(FlightLevel::Warn));
        assert_eq!(FlightLevel::parse("warning"), Some(FlightLevel::Warn));
        assert_eq!(FlightLevel::parse("verbose"), None);
    }

    #[test]
    fn ring_keeps_the_last_k_and_counts_drops() {
        let rec = FlightRecorder::new(3);
        for i in 0..5 {
            rec.record(FlightLevel::Info, "j", "tick", &format!("n={i}"));
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.dropped(), 2);
        let dump = rec.dump();
        assert_eq!(dump.len(), 3);
        // Oldest-first, and sequence numbers survive the wrap.
        assert!(dump[0].contains("\"seq\": 2"), "{}", dump[0]);
        assert!(dump[2].contains("\"seq\": 4"), "{}", dump[2]);
        assert!(dump[0].contains("\"detail\": \"n=2\""));
    }

    #[test]
    fn events_render_as_escaped_sorted_key_json() {
        let rec = FlightRecorder::new(4);
        let line = rec.record(FlightLevel::Error, "job \"a\"", "result", "x\ny");
        assert!(line.starts_with("{\"at_us\": "));
        assert!(line.contains("\"detail\": \"x\\ny\""));
        assert!(line.contains("\"job\": \"job \\\"a\\\"\""));
        assert!(line.contains("\"level\": \"error\""));
        // Keys appear in sorted order.
        let at = line.find("\"at_us\"").unwrap();
        let detail = line.find("\"detail\"").unwrap();
        let event = line.find("\"event\"").unwrap();
        let job = line.find("\"job\"").unwrap();
        let level = line.find("\"level\"").unwrap();
        let seq = line.find("\"seq\"").unwrap();
        assert!(at < detail && detail < event && event < job && job < level && level < seq);
    }

    #[test]
    fn debug_events_are_stored_even_when_not_emitted() {
        // The recorder itself never filters; emission policy lives in
        // the caller. Everything lands in the ring.
        let rec = FlightRecorder::new(8);
        rec.record(FlightLevel::Debug, "j", "slice", "cycle=100");
        rec.record(FlightLevel::Error, "j", "result", "boom");
        assert_eq!(rec.len(), 2);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_is_rejected() {
        let _ = FlightRecorder::new(0);
    }
}

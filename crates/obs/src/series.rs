//! Cycle-windowed telemetry: rate-over-time series and engine-phase spans.
//!
//! # Window semantics
//!
//! The recorder divides simulated time into consecutive windows of a
//! fixed cycle length. At each boundary the machine hands it the current
//! *cumulative* counter values; the recorder stores the per-window
//! **delta**, so by construction the sum of all recorded deltas equals
//! the end-of-run totals (as long as the ring never dropped a sample).
//! Gauges — queue depths, wait-buffer occupancy — are instantaneous
//! values read at the boundary, not deltas.
//!
//! # Determinism
//!
//! Sampling reads simulation state and never writes it, so enabling the
//! recorder cannot change a run. Boundaries are defined in *simulated*
//! cycles, and the idle fast-forward emits one sample per crossed
//! boundary with the same (unchanged) cumulative counters a stepped run
//! would have seen — the series is therefore bit-identical across the
//! sequential engine, the parallel engine at any thread count, and
//! fast-forward on/off.

use std::collections::VecDeque;

use ultra_sim::Cycle;

/// Cumulative scalar counters sampled at a window boundary. Field names
/// mirror `NetStats`; the machine fills them by summing over the `d`
/// network copies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Requests accepted into stage 0 of any copy.
    pub injected_requests: u64,
    /// Requests handed to memory modules.
    pub delivered_requests: u64,
    /// Replies injected by memory modules.
    pub injected_replies: u64,
    /// Replies delivered back to PEs.
    pub delivered_replies: u64,
    /// Pairwise combines performed in switches.
    pub combines: u64,
    /// Replies split by wait-buffer matches on the return trip.
    pub decombines: u64,
    /// Injection attempts refused by a full stage-0 queue.
    pub inject_stalls: u64,
    /// Messages lost to injected faults.
    pub fault_dropped: u64,
    /// Injections refused because the route was fault-masked.
    pub fault_refusals: u64,
}

impl CounterSnapshot {
    /// The per-window delta `self − prev` (saturating, so a snapshot
    /// taken out of order cannot underflow).
    #[must_use]
    pub fn delta(&self, prev: &CounterSnapshot) -> CounterSnapshot {
        CounterSnapshot {
            injected_requests: self
                .injected_requests
                .saturating_sub(prev.injected_requests),
            delivered_requests: self
                .delivered_requests
                .saturating_sub(prev.delivered_requests),
            injected_replies: self.injected_replies.saturating_sub(prev.injected_replies),
            delivered_replies: self
                .delivered_replies
                .saturating_sub(prev.delivered_replies),
            combines: self.combines.saturating_sub(prev.combines),
            decombines: self.decombines.saturating_sub(prev.decombines),
            inject_stalls: self.inject_stalls.saturating_sub(prev.inject_stalls),
            fault_dropped: self.fault_dropped.saturating_sub(prev.fault_dropped),
            fault_refusals: self.fault_refusals.saturating_sub(prev.fault_refusals),
        }
    }

    /// Element-wise sum, for re-aggregating window deltas into totals.
    pub fn accumulate(&mut self, other: &CounterSnapshot) {
        self.injected_requests += other.injected_requests;
        self.delivered_requests += other.delivered_requests;
        self.injected_replies += other.injected_replies;
        self.delivered_replies += other.delivered_replies;
        self.combines += other.combines;
        self.decombines += other.decombines;
        self.inject_stalls += other.inject_stalls;
        self.fault_dropped += other.fault_dropped;
        self.fault_refusals += other.fault_refusals;
    }

    /// The snapshot's fields as `(name, value)` pairs, in a fixed order —
    /// one source of truth for exporters.
    #[must_use]
    pub fn fields(&self) -> [(&'static str, u64); 9] {
        [
            ("injected_requests", self.injected_requests),
            ("delivered_requests", self.delivered_requests),
            ("injected_replies", self.injected_replies),
            ("delivered_replies", self.delivered_replies),
            ("combines", self.combines),
            ("decombines", self.decombines),
            ("inject_stalls", self.inject_stalls),
            ("fault_dropped", self.fault_dropped),
            ("fault_refusals", self.fault_refusals),
        ]
    }
}

/// Instantaneous gauges read at a window boundary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GaugeSnapshot {
    /// Deepest memory-module request queue at the boundary.
    pub mm_queue_depth_max: u64,
    /// Wait-buffer entries outstanding across all switches and copies.
    pub wait_occupancy: u64,
}

impl GaugeSnapshot {
    /// The gauges as `(name, value)` pairs, in a fixed order.
    #[must_use]
    pub fn fields(&self) -> [(&'static str, u64); 2] {
        [
            ("mm_queue_depth_max", self.mm_queue_depth_max),
            ("wait_occupancy", self.wait_occupancy),
        ]
    }
}

/// One recorded window: `[start, start + len)` in simulated cycles,
/// counter deltas over the window and gauges at its end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sample {
    /// First cycle covered by the window.
    pub start: Cycle,
    /// Cycles covered — the configured window length, except for a
    /// shorter final flush at end of run.
    pub len: u64,
    /// Counter increments that happened inside the window.
    pub counters: CounterSnapshot,
    /// Gauges read at the window's end boundary.
    pub gauges: GaugeSnapshot,
}

/// A cycle-windowed telemetry recorder: a fixed-capacity ring of
/// [`Sample`]s, off by default like the event `Trace`.
///
/// The hot-path cost while disabled is one boolean test per cycle; once
/// enabled, recording allocates nothing (the ring is preallocated and
/// old samples are dropped, counted by [`TimeSeries::dropped`]).
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    enabled: bool,
    window: u64,
    capacity: usize,
    window_start: Cycle,
    last: CounterSnapshot,
    samples: VecDeque<Sample>,
    dropped: u64,
}

impl TimeSeries {
    /// Creates a disabled recorder; [`TimeSeries::due`] is always false.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Turns recording on with the given window length (cycles) and ring
    /// capacity (samples), starting the first window at `now`.
    ///
    /// # Panics
    ///
    /// Panics if `window` or `capacity` is zero.
    pub fn enable(&mut self, window: u64, capacity: usize, now: Cycle) {
        assert!(window > 0, "telemetry window must be at least one cycle");
        assert!(capacity > 0, "telemetry ring needs capacity");
        self.enabled = true;
        self.window = window;
        self.capacity = capacity;
        self.window_start = now;
        self.last = CounterSnapshot::default();
        self.samples = VecDeque::with_capacity(capacity);
        self.dropped = 0;
    }

    /// Whether the recorder is on.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The configured window length in cycles (zero while disabled).
    #[must_use]
    pub fn window(&self) -> u64 {
        self.window
    }

    /// True when `now` has reached or passed the current window's end —
    /// the machine should take a sample. Always false while disabled.
    #[must_use]
    pub fn due(&self, now: Cycle) -> bool {
        self.enabled && now >= self.window_start + self.window
    }

    /// Records one full window ending at `window_start + window`, given
    /// the cumulative counters and boundary gauges, then starts the next
    /// window. Call while [`TimeSeries::due`] holds (repeatedly, when
    /// fast-forward skipped several boundaries at once).
    pub fn sample(&mut self, cumulative: CounterSnapshot, gauges: GaugeSnapshot) {
        debug_assert!(self.enabled);
        let sample = Sample {
            start: self.window_start,
            len: self.window,
            counters: cumulative.delta(&self.last),
            gauges,
        };
        self.push(sample);
        self.last = cumulative;
        self.window_start += self.window;
    }

    /// Records the final, possibly shorter window `[window_start, now)`
    /// at end of run. No-op while disabled or if the window is empty.
    pub fn flush(&mut self, now: Cycle, cumulative: CounterSnapshot, gauges: GaugeSnapshot) {
        if !self.enabled || now <= self.window_start {
            return;
        }
        let sample = Sample {
            start: self.window_start,
            len: now - self.window_start,
            counters: cumulative.delta(&self.last),
            gauges,
        };
        self.push(sample);
        self.last = cumulative;
        self.window_start = now;
    }

    fn push(&mut self, sample: Sample) {
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
            self.dropped += 1;
        }
        self.samples.push_back(sample);
    }

    /// The retained samples, oldest first.
    pub fn samples(&self) -> impl Iterator<Item = &Sample> {
        self.samples.iter()
    }

    /// Retained sample count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when nothing has been recorded (or retained).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Samples evicted by the ring. When zero, summed window deltas equal
    /// the end-of-run totals exactly.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Sums the retained samples' counter deltas. With
    /// [`TimeSeries::dropped`] `== 0` this equals the cumulative
    /// counters at the last boundary.
    #[must_use]
    pub fn totals(&self) -> CounterSnapshot {
        let mut total = CounterSnapshot::default();
        for s in &self.samples {
            total.accumulate(&s.counters);
        }
        total
    }
}

/// The engine phases the machine can time inside one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnginePhase {
    /// PNI outgoing-queue flush into the network copies.
    Flush,
    /// Network stage sweep across the `d` copies.
    Network,
    /// Memory-bank service and reply delivery.
    MemBanks,
    /// PE shard execution (instruction issue and retirement).
    PeShards,
}

impl EnginePhase {
    /// Stable display name (also the Perfetto track name).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EnginePhase::Flush => "flush",
            EnginePhase::Network => "network",
            EnginePhase::MemBanks => "mem-banks",
            EnginePhase::PeShards => "pe-shards",
        }
    }

    /// A stable small integer for Perfetto `tid` assignment.
    #[must_use]
    pub fn track(self) -> u64 {
        match self {
            EnginePhase::Flush => 1,
            EnginePhase::Network => 2,
            EnginePhase::MemBanks => 3,
            EnginePhase::PeShards => 4,
        }
    }
}

/// One timed engine phase: wall-clock nanoseconds relative to the
/// recorder's enable point, tagged with the simulated cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseSpan {
    /// Simulated cycle the phase ran in.
    pub cycle: Cycle,
    /// Which engine phase.
    pub phase: EnginePhase,
    /// Wall-clock start, nanoseconds since the recorder was enabled.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
    /// Worker-pool chunks the phase fanned out over (0 when the phase
    /// did not dispatch through the pool).
    pub pool_chunks: u32,
}

/// A fixed-capacity ring of [`PhaseSpan`]s — per-cycle engine phase
/// timing for Perfetto export. Off by default; the spans carry wall
/// clock, so they are *not* deterministic and never feed back into
/// simulation state or parity.
#[derive(Debug, Clone, Default)]
pub struct PhaseRecorder {
    enabled: bool,
    capacity: usize,
    spans: VecDeque<PhaseSpan>,
    dropped: u64,
}

impl PhaseRecorder {
    /// Creates a disabled recorder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Turns recording on with room for `capacity` spans.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn enable(&mut self, capacity: usize) {
        assert!(capacity > 0, "phase ring needs capacity");
        self.enabled = true;
        self.capacity = capacity;
        self.spans = VecDeque::with_capacity(capacity);
        self.dropped = 0;
    }

    /// Whether the recorder is on.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records a span; drops the oldest when full. No-op while disabled.
    pub fn record(&mut self, span: PhaseSpan) {
        if !self.enabled {
            return;
        }
        if self.spans.len() == self.capacity {
            self.spans.pop_front();
            self.dropped += 1;
        }
        self.spans.push_back(span);
    }

    /// Retained spans, oldest first.
    pub fn spans(&self) -> impl Iterator<Item = &PhaseSpan> {
        self.spans.iter()
    }

    /// Spans evicted by the ring.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained span count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when nothing has been recorded (or retained).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters(injected: u64, combines: u64) -> CounterSnapshot {
        CounterSnapshot {
            injected_requests: injected,
            combines,
            ..CounterSnapshot::default()
        }
    }

    #[test]
    fn disabled_recorder_is_never_due() {
        let ts = TimeSeries::new();
        assert!(!ts.due(0));
        assert!(!ts.due(u64::MAX / 2));
        assert!(ts.is_empty());
    }

    #[test]
    fn deltas_sum_to_totals() {
        let mut ts = TimeSeries::new();
        ts.enable(10, 64, 0);
        let mut cum = 0;
        for w in 1..=5u64 {
            cum += w * 3;
            assert!(ts.due(w * 10));
            ts.sample(counters(cum, w), GaugeSnapshot::default());
        }
        assert_eq!(ts.len(), 5);
        assert_eq!(ts.dropped(), 0);
        let totals = ts.totals();
        assert_eq!(totals.injected_requests, cum);
        assert_eq!(totals.combines, 5);
        // Individual deltas are per-window increments, not cumulative.
        let first = ts.samples().next().unwrap();
        assert_eq!(first.counters.injected_requests, 3);
        assert_eq!(first.start, 0);
        assert_eq!(first.len, 10);
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut ts = TimeSeries::new();
        ts.enable(4, 3, 0);
        for i in 1..=7u64 {
            ts.sample(counters(i, 0), GaugeSnapshot::default());
        }
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.dropped(), 4);
        let starts: Vec<u64> = ts.samples().map(|s| s.start).collect();
        assert_eq!(starts, vec![16, 20, 24], "oldest windows evicted first");
    }

    #[test]
    fn flush_records_partial_final_window() {
        let mut ts = TimeSeries::new();
        ts.enable(100, 8, 0);
        ts.sample(counters(10, 1), GaugeSnapshot::default());
        // Run ends mid-window at cycle 130.
        ts.flush(130, counters(14, 1), GaugeSnapshot::default());
        let last = ts.samples().last().unwrap();
        assert_eq!(last.start, 100);
        assert_eq!(last.len, 30);
        assert_eq!(last.counters.injected_requests, 4);
        assert_eq!(last.counters.combines, 0);
        // Flushing again at the same cycle records nothing.
        ts.flush(130, counters(14, 1), GaugeSnapshot::default());
        assert_eq!(ts.len(), 2);
    }

    #[test]
    fn fast_forward_boundary_catch_up_is_zero_delta() {
        let mut ts = TimeSeries::new();
        ts.enable(10, 16, 0);
        let cum = counters(42, 7);
        // Simulate a fast-forward that crossed three boundaries: the
        // machine samples three times with the same cumulative values.
        while ts.due(35) {
            ts.sample(cum, GaugeSnapshot::default());
        }
        assert_eq!(ts.len(), 3);
        let deltas: Vec<u64> = ts.samples().map(|s| s.counters.injected_requests).collect();
        assert_eq!(deltas, vec![42, 0, 0]);
        assert_eq!(ts.totals().injected_requests, 42);
    }

    #[test]
    fn phase_recorder_rings() {
        let mut pr = PhaseRecorder::new();
        pr.record(PhaseSpan {
            cycle: 0,
            phase: EnginePhase::Network,
            start_ns: 0,
            dur_ns: 1,
            pool_chunks: 0,
        });
        assert_eq!(pr.spans().count(), 0, "disabled recorder stores nothing");
        pr.enable(2);
        for c in 0..5u64 {
            pr.record(PhaseSpan {
                cycle: c,
                phase: EnginePhase::PeShards,
                start_ns: c * 10,
                dur_ns: 5,
                pool_chunks: 4,
            });
        }
        assert_eq!(pr.dropped(), 3);
        let cycles: Vec<u64> = pr.spans().map(|s| s.cycle).collect();
        assert_eq!(cycles, vec![3, 4]);
    }
}

//! Hot-spot heatmaps: per-switch, per-stage matrices over the fabric.
//!
//! The paper's hot-spot discussion (§3.1.2, §4.2) is about *where*
//! combining happens — which stages absorb a fetch-and-add storm, where
//! queues back up. A [`HeatmapSnapshot`] captures exactly that at one
//! moment: stage-major matrices of cumulative combine counts, request
//! queue high-water marks and instantaneous wait-buffer occupancy, one
//! cell per switch. Snapshots from the `d` replicated network copies
//! merge element-wise, and the ASCII renderer downsamples wide stages
//! so a 4096-PE fabric still fits a terminal.

/// Per-switch matrices sampled from an Omega network (or merged across
/// the replicated copies).
///
/// All three matrices are stage-major: the cell for switch `i` of stage
/// `s` lives at index `s * width + i`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeatmapSnapshot {
    stages: usize,
    width: usize,
    combines: Vec<u64>,
    queue_high_water: Vec<u64>,
    wait_occupancy: Vec<u64>,
}

impl HeatmapSnapshot {
    /// A zeroed snapshot for a fabric of `stages × width` switches.
    #[must_use]
    pub fn new(stages: usize, width: usize) -> Self {
        let cells = stages * width;
        Self {
            stages,
            width,
            combines: vec![0; cells],
            queue_high_water: vec![0; cells],
            wait_occupancy: vec![0; cells],
        }
    }

    /// Number of stages (matrix rows).
    #[must_use]
    pub fn stages(&self) -> usize {
        self.stages
    }

    /// Switches per stage (matrix columns).
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Records one switch's cell values.
    ///
    /// # Panics
    ///
    /// Panics if `stage`/`index` are out of range.
    pub fn record(&mut self, stage: usize, index: usize, combines: u64, queue_hw: u64, wait: u64) {
        assert!(stage < self.stages && index < self.width, "cell in range");
        let cell = stage * self.width + index;
        self.combines[cell] = combines;
        self.queue_high_water[cell] = queue_hw;
        self.wait_occupancy[cell] = wait;
    }

    /// Merges another copy's snapshot: combines and wait occupancy sum,
    /// queue high-water takes the max.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn merge(&mut self, other: &HeatmapSnapshot) {
        assert_eq!(self.stages, other.stages, "same stage count");
        assert_eq!(self.width, other.width, "same stage width");
        for (a, b) in self.combines.iter_mut().zip(&other.combines) {
            *a += b;
        }
        for (a, b) in self
            .queue_high_water
            .iter_mut()
            .zip(&other.queue_high_water)
        {
            *a = (*a).max(*b);
        }
        for (a, b) in self.wait_occupancy.iter_mut().zip(&other.wait_occupancy) {
            *a += b;
        }
    }

    /// Stage-major combine counts.
    #[must_use]
    pub fn combines(&self) -> &[u64] {
        &self.combines
    }

    /// Stage-major request-queue high-water marks (packets).
    #[must_use]
    pub fn queue_high_water(&self) -> &[u64] {
        &self.queue_high_water
    }

    /// Stage-major wait-buffer occupancy (entries outstanding at the
    /// sample instant).
    #[must_use]
    pub fn wait_occupancy(&self) -> &[u64] {
        &self.wait_occupancy
    }

    /// Renders the three matrices as ASCII heatmaps, one row per stage,
    /// downsampled to at most `max_cols` columns. Each matrix is
    /// normalized to its own maximum over the ramp `" .:-=+*#%@"`.
    #[must_use]
    pub fn render_ascii(&self, max_cols: usize) -> String {
        let mut out = String::new();
        out.push_str(&render_matrix(
            "combines",
            &self.combines,
            self.stages,
            self.width,
            max_cols,
            Reduce::Sum,
        ));
        out.push_str(&render_matrix(
            "queue high-water",
            &self.queue_high_water,
            self.stages,
            self.width,
            max_cols,
            Reduce::Max,
        ));
        out.push_str(&render_matrix(
            "wait occupancy",
            &self.wait_occupancy,
            self.stages,
            self.width,
            max_cols,
            Reduce::Sum,
        ));
        out
    }
}

/// How neighbouring cells fold together when a stage is downsampled.
#[derive(Clone, Copy)]
enum Reduce {
    Sum,
    Max,
}

const RAMP: &[u8] = b" .:-=+*#%@";

fn render_matrix(
    title: &str,
    cells: &[u64],
    stages: usize,
    width: usize,
    max_cols: usize,
    reduce: Reduce,
) -> String {
    let cols = width.min(max_cols.max(1));
    let peak = cells.iter().copied().max().unwrap_or(0);
    let mut out = format!("  {title} (per switch, peak {peak}):\n");
    for stage in 0..stages {
        let row = &cells[stage * width..(stage + 1) * width];
        out.push_str(&format!("    s{stage:<2} |"));
        for col in 0..cols {
            // Fold the contiguous cell range this column covers.
            let lo = col * width / cols;
            let hi = ((col + 1) * width / cols).max(lo + 1);
            let folded = match reduce {
                Reduce::Sum => row[lo..hi].iter().sum::<u64>(),
                Reduce::Max => row[lo..hi].iter().copied().max().unwrap_or(0),
            };
            out.push(shade(folded, peak, reduce, (hi - lo) as u64));
        }
        out.push_str("|\n");
    }
    out
}

/// Picks a ramp character for a folded value against the matrix peak
/// (scaled by the fold width for summing reductions, so downsampling
/// does not saturate the shading).
fn shade(value: u64, peak: u64, reduce: Reduce, fold: u64) -> char {
    let scale = match reduce {
        Reduce::Sum => peak.saturating_mul(fold),
        Reduce::Max => peak,
    };
    if scale == 0 || value == 0 {
        return RAMP[0] as char;
    }
    let last = RAMP.len() as u64 - 1;
    // Ceiling division: any nonzero value shades at least `.`, the peak
    // shades `@`.
    let level = value.saturating_mul(last).div_ceil(scale);
    RAMP[level.clamp(1, last) as usize] as char
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_read_back() {
        let mut h = HeatmapSnapshot::new(2, 4);
        h.record(1, 2, 10, 3, 1);
        assert_eq!(h.combines()[4 + 2], 10);
        assert_eq!(h.queue_high_water()[6], 3);
        assert_eq!(h.wait_occupancy()[6], 1);
        assert_eq!(h.stages(), 2);
        assert_eq!(h.width(), 4);
    }

    #[test]
    fn merge_sums_and_maxes() {
        let mut a = HeatmapSnapshot::new(1, 2);
        a.record(0, 0, 5, 7, 2);
        let mut b = HeatmapSnapshot::new(1, 2);
        b.record(0, 0, 3, 4, 1);
        b.record(0, 1, 1, 9, 0);
        a.merge(&b);
        assert_eq!(a.combines(), &[8, 1]);
        assert_eq!(a.queue_high_water(), &[7, 9]);
        assert_eq!(a.wait_occupancy(), &[3, 0]);
    }

    #[test]
    fn ascii_rows_match_stage_count_and_width() {
        let mut h = HeatmapSnapshot::new(3, 8);
        h.record(0, 0, 100, 5, 2);
        h.record(2, 7, 1, 1, 1);
        let text = h.render_ascii(8);
        // Three matrices × (title + 3 stage rows).
        assert_eq!(text.lines().count(), 3 * 4);
        let row = text.lines().nth(1).unwrap();
        let cells = row.split('|').nth(1).unwrap();
        assert_eq!(cells.len(), 8);
        assert!(text.contains("combines (per switch, peak 100)"));
        // The hot cell shades darkest, untouched cells stay blank.
        assert!(cells.starts_with('@'));
        assert!(cells.ends_with(' '));
    }

    #[test]
    fn downsampling_folds_columns() {
        let mut h = HeatmapSnapshot::new(1, 16);
        for i in 0..16 {
            h.record(0, i, 4, 2, 0);
        }
        let text = h.render_ascii(4);
        let row = text.lines().nth(1).unwrap();
        let cells = row.split('|').nth(1).unwrap();
        assert_eq!(cells.len(), 4, "16 switches fold into 4 columns");
        // A uniform matrix folds into uniform shading.
        assert!(cells.chars().all(|c| c == cells.chars().next().unwrap()));
    }

    #[test]
    fn empty_snapshot_renders_blank() {
        let h = HeatmapSnapshot::new(2, 2);
        let text = h.render_ascii(80);
        assert!(text.contains("peak 0"));
        assert!(!text.contains('@'));
    }
}

//! Hand-serialized Chrome/Perfetto `trace_event` JSON.
//!
//! The [trace event format] is the lingua franca of `ui.perfetto.dev`
//! and `chrome://tracing`: a JSON array of event objects, each with a
//! `name`, a phase `ph`, a timestamp `ts` (microseconds) and `pid`/`tid`
//! track coordinates. [`ChromeTraceBuilder`] writes that array with no
//! dependencies, in the same hand-rolled style as the repo's BENCH
//! files; strings pass through [`json_escape`] so arbitrary names are
//! safe.
//!
//! [trace event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

/// Escapes a string for inclusion inside a JSON string literal
/// (quotes, backslashes and control characters).
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number (JSON has no NaN/Infinity; both
/// collapse to 0).
fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "0".to_owned()
    }
}

/// An incremental writer for a `trace_event` JSON array.
///
/// Events are appended in call order; [`ChromeTraceBuilder::finish`]
/// closes the array. Timestamps are in microseconds, per the format —
/// callers exporting simulated time conventionally map one cycle to one
/// microsecond.
#[derive(Debug, Default)]
pub struct ChromeTraceBuilder {
    out: String,
    any: bool,
}

impl ChromeTraceBuilder {
    /// Starts an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self {
            out: String::from("[\n"),
            any: false,
        }
    }

    fn event(&mut self, body: &str) {
        if self.any {
            self.out.push_str(",\n");
        }
        self.any = true;
        self.out.push(' ');
        self.out.push_str(body);
    }

    /// A complete (`ph: "X"`) duration span.
    pub fn complete(&mut self, name: &str, pid: u64, tid: u64, ts_us: f64, dur_us: f64) {
        let body = format!(
            "{{\"name\": \"{}\", \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \"pid\": {pid}, \"tid\": {tid}}}",
            json_escape(name),
            json_num(ts_us),
            json_num(dur_us),
        );
        self.event(&body);
    }

    /// A thread-scoped instant (`ph: "i"`) event.
    pub fn instant(&mut self, name: &str, pid: u64, tid: u64, ts_us: f64) {
        let body = format!(
            "{{\"name\": \"{}\", \"ph\": \"i\", \"s\": \"t\", \"ts\": {}, \"pid\": {pid}, \"tid\": {tid}}}",
            json_escape(name),
            json_num(ts_us),
        );
        self.event(&body);
    }

    /// A counter (`ph: "C"`) sample: one named track carrying one or
    /// more series values at `ts_us`.
    pub fn counter(&mut self, name: &str, pid: u64, ts_us: f64, series: &[(&str, f64)]) {
        let mut args = String::new();
        for (i, (key, value)) in series.iter().enumerate() {
            if i > 0 {
                args.push_str(", ");
            }
            args.push_str(&format!("\"{}\": {}", json_escape(key), json_num(*value)));
        }
        let body = format!(
            "{{\"name\": \"{}\", \"ph\": \"C\", \"ts\": {}, \"pid\": {pid}, \"tid\": 0, \"args\": {{{args}}}}}",
            json_escape(name),
            json_num(ts_us),
        );
        self.event(&body);
    }

    /// Process-name metadata (`ph: "M"`), so Perfetto labels the track
    /// group.
    pub fn process_name(&mut self, pid: u64, name: &str) {
        let body = format!(
            "{{\"name\": \"process_name\", \"ph\": \"M\", \"ts\": 0, \"pid\": {pid}, \"tid\": 0, \"args\": {{\"name\": \"{}\"}}}}",
            json_escape(name),
        );
        self.event(&body);
    }

    /// Thread-name metadata (`ph: "M"`) for one `(pid, tid)` track.
    pub fn thread_name(&mut self, pid: u64, tid: u64, name: &str) {
        let body = format!(
            "{{\"name\": \"thread_name\", \"ph\": \"M\", \"ts\": 0, \"pid\": {pid}, \"tid\": {tid}, \"args\": {{\"name\": \"{}\"}}}}",
            json_escape(name),
        );
        self.event(&body);
    }

    /// Closes the array and returns the JSON text.
    #[must_use]
    pub fn finish(mut self) -> String {
        self.out.push_str("\n]\n");
        self.out
    }

    /// Number of events appended so far.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        !self.any
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\n\t\r"), "x\\n\\t\\r");
        assert_eq!(json_escape("\u{01}"), "\\u0001");
    }

    #[test]
    fn events_form_a_json_array() {
        let mut b = ChromeTraceBuilder::new();
        assert!(b.is_empty());
        b.process_name(1, "machine");
        b.complete("reply", 1, 3, 10.0, 4.5);
        b.instant("issue", 1, 3, 10.0);
        b.counter("rates", 2, 0.0, &[("injected", 5.0), ("combines", 2.0)]);
        let text = b.finish();
        assert!(text.starts_with("[\n"));
        assert!(text.trim_end().ends_with(']'));
        assert!(text.contains("\"ph\": \"X\""));
        assert!(text.contains("\"dur\": 4.5"));
        assert!(text.contains("\"combines\": 2"));
        // Exactly events-1 separators: no trailing comma.
        assert_eq!(text.matches(",\n").count(), 3);
    }

    #[test]
    fn non_finite_numbers_stay_valid_json() {
        let mut b = ChromeTraceBuilder::new();
        b.complete("x", 1, 1, f64::NAN, f64::INFINITY);
        let text = b.finish();
        assert!(!text.contains("NaN"));
        assert!(!text.contains("inf"));
    }
}

//! Observability for the Ultracomputer simulator.
//!
//! The paper's whole evaluation (§4–§5) rests on *observing* simulated
//! runs, yet end-of-run aggregates (`NetStats`, `PeStats`) can only say
//! what happened on average — never *when* congestion formed or *where*
//! in the fabric it sat. This crate supplies the three missing views:
//!
//! * [`series`] — a cycle-windowed time-series recorder ([`TimeSeries`])
//!   the machine samples at window boundaries, turning cumulative
//!   counters into rate-over-time curves. Off by default, zero
//!   allocation once enabled, and deterministic: the sampled series is
//!   bit-identical across the sequential and parallel cycle engines.
//! * [`chrome`] — a hand-serialized Chrome/Perfetto `trace_event` JSON
//!   writer ([`ChromeTraceBuilder`]), so event rings, engine-phase
//!   spans and telemetry series load directly in `ui.perfetto.dev`.
//!   No serde, mirroring the repo's hand-rolled BENCH JSON files.
//! * [`heatmap`] — per-switch, per-stage matrices ([`HeatmapSnapshot`])
//!   of combine counts, queue high-water marks and wait-buffer
//!   occupancy, with an ASCII renderer for report footers.
//!
//! The modules above observe the simulated *machine* in simulated time.
//! Two further modules observe the **service wrapped around it** in
//! wall-clock time (see `ultra-serve`):
//!
//! * [`metrics`] — a dep-free service-metrics registry
//!   ([`MetricsRegistry`]: counters, gauges, log-bin histograms on
//!   relaxed atomics) with Prometheus-style text exposition
//!   ([`PromWriter`]).
//! * [`flight`] — a bounded flight recorder ([`FlightRecorder`]) keeping
//!   the last K structured NDJSON job events for post-mortem dumps.
//!
//! Everything here is passive: recording never feeds back into the
//! simulation, so enabling telemetry cannot perturb `parity_string`.

pub mod chrome;
pub mod flight;
pub mod heatmap;
pub mod metrics;
pub mod series;

pub use chrome::{json_escape, ChromeTraceBuilder};
pub use flight::{FlightEvent, FlightLevel, FlightRecorder};
pub use heatmap::HeatmapSnapshot;
pub use metrics::{
    AtomicHistogram, Counter, Gauge, HistoSnapshot, MetricKind, MetricsRegistry, PromWriter,
};
pub use series::{
    CounterSnapshot, EnginePhase, GaugeSnapshot, PhaseRecorder, PhaseSpan, Sample, TimeSeries,
};

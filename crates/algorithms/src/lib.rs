//! Critical-section-free fetch-and-add algorithms (paper §2.3 and the
//! appendix, "Management of Highly Parallel Queues").
//!
//! The paper's thesis is that with fetch-and-add "we can perform many
//! important algorithms in a completely parallel manner, i.e. without
//! using any critical sections" — and that, e.g., "given a single queue
//! that is neither empty nor full, the concurrent execution of thousands
//! of inserts and thousands of deletes can all be accomplished in the time
//! required for just one such operation."
//!
//! Two families live here:
//!
//! * [`native`] — real-thread implementations on `std::sync::atomic`
//!   (whose `fetch_add` *is* the paper's primitive, combining aside):
//!   the appendix queue ([`native::queue::UltraQueue`]), a fetch-and-add barrier,
//!   a readers–writers coordination built from fetch-phi primitives, and
//!   self-scheduled loops; plus mutex-based baselines for the benchmarks.
//! * [`sim`] — the same appendix queue expressed as explicit
//!   one-memory-op-per-step state machines over the
//!   [`ultracomputer::Paracomputer`], driven by a randomized interleaver,
//!   so the algorithm's correctness under *arbitrary* interleavings (and
//!   the necessity of TIR/TDR's "redundant" initial test) can be property
//!   tested.

pub mod native;
pub mod sim;

pub use native::barrier::FaaBarrier;
pub use native::counter::{FaaCounter, MutexCounter};
pub use native::loop_sched::{parallel_for, SelfSchedule};
pub use native::queue::{MutexQueue, QueueFull, UltraQueue};
pub use native::rwlock::FaaRwLock;
pub use native::semaphore::FaaSemaphore;
pub use sim::queue::{InterleavedQueueSim, SimEvent};
pub use sim::rwlock::{InterleavedRwSim, RwReport};

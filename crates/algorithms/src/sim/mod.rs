//! Simulated variants of the fetch-and-add algorithms, executed one
//! memory operation at a time over the ideal paracomputer so that
//! arbitrary interleavings can be explored deterministically.

pub mod queue;
pub mod rwlock;

//! The readers–writers coordination as an interleaved state-machine
//! simulation over the paracomputer (§2.3).
//!
//! The paper cites Gottlieb, Lubachevsky & Rudolph's "completely parallel
//! solution to the readers-writers problem": readers announce themselves
//! with one fetch-and-add and proceed when no writer is present — no
//! critical section on the read path; writers (inherently serial) acquire
//! an exclusivity flag derived from test-and-set, itself a fetch-and-phi
//! special case (§2.4).
//!
//! Each virtual processor executes one shared-memory operation per
//! scheduler step, so every interleaving the seeded scheduler produces is
//! a legal serialization. The checked properties:
//!
//! * **writer exclusion** — a protected two-word record is always
//!   consistent when a reader copies it (writers update both words, so a
//!   torn read would catch an overlap);
//! * **writer mutual exclusion** — two writers never interleave inside
//!   the protected section;
//! * **progress** — every processor finishes.

use ultra_sim::{Rng, SplitMix64, Value};
use ultracomputer::paracomputer::Paracomputer;

// Shared layout.
const A_STATE: usize = 0; // readers count + WRITER_BIT
const A_DATA0: usize = 1; // protected record word 0
const A_DATA1: usize = 2; // protected record word 1 (must equal word 0)
const WRITER_BIT: Value = 1 << 40;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReaderState {
    Announce,
    CheckSeen { seen: Value },
    Retract,
    SpinUntilClear,
    ReadWord0,
    ReadWord1 { w0: Value },
    Retire,
    Done,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WriterState {
    Acquire,
    CheckSeen { seen: Value },
    Backoff,
    SpinUntilClear,
    DrainReaders,
    WriteWord0,
    WriteWord1,
    Release,
    Done,
}

#[derive(Debug, Clone, Copy)]
enum Proc {
    Reader { state: ReaderState },
    Writer { value: Value, state: WriterState },
}

impl Proc {
    fn done(&self) -> bool {
        matches!(
            self,
            Proc::Reader {
                state: ReaderState::Done,
                ..
            } | Proc::Writer {
                state: WriterState::Done,
                ..
            }
        )
    }
}

/// An interleaved readers–writers simulation.
///
/// # Example
///
/// ```
/// use ultra_algorithms::sim::rwlock::InterleavedRwSim;
///
/// let mut sim = InterleavedRwSim::new(7);
/// for i in 0..6 {
///     sim.spawn_reader(i);
/// }
/// for v in 1..4 {
///     sim.spawn_writer(v * 11);
/// }
/// let report = sim.run(1_000_000);
/// assert_eq!(report.torn_reads, 0);
/// assert_eq!(report.completed_readers, 6);
/// ```
#[derive(Debug)]
pub struct InterleavedRwSim {
    para: Paracomputer,
    procs: Vec<Proc>,
    rng: SplitMix64,
    /// Set while some writer believes it is inside the protected section;
    /// a second writer entering is a mutual-exclusion violation.
    writer_inside: bool,
    violations: usize,
}

/// What a finished run observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RwReport {
    /// Readers that finished.
    pub completed_readers: usize,
    /// Writers that finished.
    pub completed_writers: usize,
    /// Reads that saw an inconsistent (torn) record.
    pub torn_reads: usize,
    /// Writer mutual-exclusion violations.
    pub exclusion_violations: usize,
    /// Scheduler steps taken.
    pub steps: u64,
}

impl InterleavedRwSim {
    /// Creates a simulation with interleaving fixed by `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            para: Paracomputer::new(seed ^ 0x5157_1bad_cafe),
            procs: Vec::new(),
            rng: SplitMix64::new(seed),
            writer_inside: false,
            violations: 0,
        }
    }

    /// Adds a reader (`_id` kept for call-site readability).
    pub fn spawn_reader(&mut self, _id: usize) {
        self.procs.push(Proc::Reader {
            state: ReaderState::Announce,
        });
    }

    /// Adds a writer that will store `value` into both record words.
    pub fn spawn_writer(&mut self, value: Value) {
        self.procs.push(Proc::Writer {
            value,
            state: WriterState::Acquire,
        });
    }

    /// Runs to completion (or panics after `max_steps`).
    ///
    /// # Panics
    ///
    /// Panics if some interleaving wedges — which would falsify the
    /// algorithm's progress claim.
    pub fn run(&mut self, max_steps: u64) -> RwReport {
        let mut torn = 0usize;
        let mut steps = 0u64;
        while self.procs.iter().any(|p| !p.done()) {
            steps += 1;
            assert!(
                steps <= max_steps,
                "readers-writers wedged after {steps} steps"
            );
            let live: Vec<usize> = (0..self.procs.len())
                .filter(|&i| !self.procs[i].done())
                .collect();
            let pick = live[self.rng.below(live.len())];
            torn += self.step(pick);
        }
        RwReport {
            completed_readers: self
                .procs
                .iter()
                .filter(|p| matches!(p, Proc::Reader { .. }))
                .count(),
            completed_writers: self
                .procs
                .iter()
                .filter(|p| matches!(p, Proc::Writer { .. }))
                .count(),
            torn_reads: torn,
            exclusion_violations: self.violations,
            steps,
        }
    }

    /// Executes one shared-memory operation of processor `i`; returns the
    /// number of torn reads observed (0 or 1).
    fn step(&mut self, i: usize) -> usize {
        let mut proc = self.procs[i];
        let mut torn = 0;
        match &mut proc {
            Proc::Reader { state, .. } => match *state {
                ReaderState::Announce => {
                    let seen = self.para.fetch_add(A_STATE, 1);
                    *state = ReaderState::CheckSeen { seen };
                }
                ReaderState::CheckSeen { seen } => {
                    // Pure control: no memory op, but costs a step.
                    *state = if seen < WRITER_BIT {
                        ReaderState::ReadWord0
                    } else {
                        ReaderState::Retract
                    };
                }
                ReaderState::Retract => {
                    let _ = self.para.fetch_add(A_STATE, -1);
                    *state = ReaderState::SpinUntilClear;
                }
                ReaderState::SpinUntilClear => {
                    if self.para.load(A_STATE) < WRITER_BIT {
                        *state = ReaderState::Announce;
                    }
                }
                ReaderState::ReadWord0 => {
                    let w0 = self.para.load(A_DATA0);
                    *state = ReaderState::ReadWord1 { w0 };
                }
                ReaderState::ReadWord1 { w0 } => {
                    let w1 = self.para.load(A_DATA1);
                    if w0 != w1 {
                        torn = 1;
                    }
                    *state = ReaderState::Retire;
                }
                ReaderState::Retire => {
                    let _ = self.para.fetch_add(A_STATE, -1);
                    *state = ReaderState::Done;
                }
                ReaderState::Done => {}
            },
            Proc::Writer { value, state } => match *state {
                WriterState::Acquire => {
                    let seen = self.para.fetch_add(A_STATE, WRITER_BIT);
                    *state = WriterState::CheckSeen { seen };
                }
                WriterState::CheckSeen { seen } => {
                    *state = if seen < WRITER_BIT {
                        WriterState::DrainReaders
                    } else {
                        WriterState::Backoff
                    };
                }
                WriterState::Backoff => {
                    let _ = self.para.fetch_add(A_STATE, -WRITER_BIT);
                    *state = WriterState::SpinUntilClear;
                }
                WriterState::SpinUntilClear => {
                    if self.para.load(A_STATE) < WRITER_BIT {
                        *state = WriterState::Acquire;
                    }
                }
                WriterState::DrainReaders => {
                    if self.para.load(A_STATE) % WRITER_BIT == 0 {
                        // Entering the protected section.
                        if self.writer_inside {
                            self.violations += 1;
                        }
                        self.writer_inside = true;
                        *state = WriterState::WriteWord0;
                    }
                }
                WriterState::WriteWord0 => {
                    self.para.store(A_DATA0, *value);
                    *state = WriterState::WriteWord1;
                }
                WriterState::WriteWord1 => {
                    self.para.store(A_DATA1, *value);
                    *state = WriterState::Release;
                }
                WriterState::Release => {
                    self.writer_inside = false;
                    let _ = self.para.fetch_add(A_STATE, -WRITER_BIT);
                    *state = WriterState::Done;
                }
                WriterState::Done => {}
            },
        }
        self.procs[i] = proc;
        torn
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn readers_never_observe_torn_writes() {
        for seed in 0..60 {
            let mut sim = InterleavedRwSim::new(seed);
            for i in 0..8 {
                sim.spawn_reader(i);
            }
            for v in 1..5 {
                sim.spawn_writer(v * 100);
            }
            let r = sim.run(2_000_000);
            assert_eq!(r.torn_reads, 0, "seed {seed}");
            assert_eq!(r.exclusion_violations, 0, "seed {seed}");
            assert_eq!(r.completed_readers, 8);
            assert_eq!(r.completed_writers, 4);
        }
    }

    #[test]
    fn readers_only_never_block() {
        let mut sim = InterleavedRwSim::new(3);
        for i in 0..16 {
            sim.spawn_reader(i);
        }
        let r = sim.run(100_000);
        // Read path: announce, check, read, read, retire = 5 steps each.
        assert_eq!(r.steps, 16 * 5, "no reader ever retried");
    }

    #[test]
    fn writers_only_serialize() {
        for seed in 0..20 {
            let mut sim = InterleavedRwSim::new(seed);
            for v in 1..8 {
                sim.spawn_writer(v);
            }
            let r = sim.run(2_000_000);
            assert_eq!(r.exclusion_violations, 0, "seed {seed}");
        }
    }
}

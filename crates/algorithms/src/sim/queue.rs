//! The appendix queue as an interleaved state-machine simulation.
//!
//! Each virtual processor runs the appendix's `Insert` or `Delete`
//! procedure decomposed into steps of **one shared-memory operation each**
//! (every fetch-and-add, load and store is a separate step). A seeded
//! scheduler interleaves the processors arbitrarily. Because every
//! interleaving corresponds to a legal serialization of the paracomputer's
//! simultaneous operations, any property that survives all sampled
//! interleavings is strong evidence for the paper's claim that the
//! algorithm is correct *without any critical section*.
//!
//! The FIFO correctness condition checked here is the appendix's: "If
//! insertion of a data item p is completed before insertion of another
//! data item q is started, then it must not be possible for a deletion
//! yielding q to complete before a deletion yielding p has started."

use ultra_sim::{Rng, SplitMix64, Value};
use ultracomputer::paracomputer::Paracomputer;

// Shared-memory layout (flat paracomputer addresses).
const A_INSERT_PTR: usize = 0;
const A_DELETE_PTR: usize = 1;
const A_UPPER: usize = 2; // #Qu
const A_LOWER: usize = 3; // #Qi
const A_CELLS: usize = 16; // cell i: value at A_CELLS+2i, turn at A_CELLS+2i+1

/// Observable events, in scheduler-step order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimEvent {
    /// An insert procedure began (datum recorded).
    InsertStart(Value),
    /// An insert completed successfully.
    InsertDone(Value),
    /// An insert observed `QueueOverflow`.
    InsertOverflow(Value),
    /// A delete procedure began.
    DeleteStart(usize),
    /// A delete completed, yielding a datum.
    DeleteDone(usize, Value),
    /// A delete observed `QueueUnderflow`.
    DeleteUnderflow(usize),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InsState {
    TirTest,
    TirRetest,
    ClaimSlot,
    WaitTurn { raw: Value },
    WriteCell { raw: Value },
    BumpLower,
    Done,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DelState {
    TdrTest,
    TdrRetest,
    ClaimSlot,
    WaitTurn { raw: Value },
    ReadCell { raw: Value },
    DropUpper,
    Done,
}

#[derive(Debug, Clone, Copy)]
enum Proc {
    Insert { datum: Value, state: InsState },
    Delete { id: usize, state: DelState },
}

impl Proc {
    fn done(&self) -> bool {
        match self {
            Proc::Insert { state, .. } => *state == InsState::Done,
            Proc::Delete { state, .. } => *state == DelState::Done,
        }
    }
}

/// An interleaved simulation of concurrent inserts and deletes.
///
/// # Example
///
/// ```
/// use ultra_algorithms::InterleavedQueueSim;
///
/// let mut sim = InterleavedQueueSim::new(8, 42);
/// for v in 0..20 {
///     sim.spawn_insert(v);
/// }
/// for _ in 0..20 {
///     sim.spawn_delete();
/// }
/// let events = sim.run(1_000_000);
/// sim.check_conservation(&events);
/// sim.check_fifo_condition(&events);
/// ```
#[derive(Debug)]
pub struct InterleavedQueueSim {
    para: Paracomputer,
    size: usize,
    procs: Vec<Proc>,
    rng: SplitMix64,
    next_delete_id: usize,
}

impl InterleavedQueueSim {
    /// Creates a queue of capacity `size`; `seed` fixes the interleaving.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    #[must_use]
    pub fn new(size: usize, seed: u64) -> Self {
        assert!(size > 0, "queue needs at least one slot");
        Self {
            para: Paracomputer::new(seed ^ 0x9e37),
            size,
            procs: Vec::new(),
            rng: SplitMix64::new(seed),
            next_delete_id: 0,
        }
    }

    /// Queue capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.size
    }

    /// Adds a virtual processor that will insert `datum`.
    pub fn spawn_insert(&mut self, datum: Value) {
        self.procs.push(Proc::Insert {
            datum,
            state: InsState::TirTest,
        });
    }

    /// Adds a virtual processor that will delete one item.
    pub fn spawn_delete(&mut self) {
        self.procs.push(Proc::Delete {
            id: self.next_delete_id,
            state: DelState::TdrTest,
        });
        self.next_delete_id += 1;
    }

    /// Runs until every processor finishes, interleaving one shared-memory
    /// step at a time; returns the event trace.
    ///
    /// # Panics
    ///
    /// Panics if the budget of `max_steps` is exhausted (indicating a
    /// stuck interleaving, which would falsify the algorithm).
    pub fn run(&mut self, max_steps: u64) -> Vec<SimEvent> {
        let mut events = Vec::new();
        // Emit start events in spawn order (all procs are "simultaneous"
        // from step 0; starts are ordered before any step).
        for p in &self.procs {
            match p {
                Proc::Insert { datum, .. } => events.push(SimEvent::InsertStart(*datum)),
                Proc::Delete { id, .. } => events.push(SimEvent::DeleteStart(*id)),
            }
        }
        let mut steps = 0;
        while self.procs.iter().any(|p| !p.done()) {
            steps += 1;
            assert!(steps <= max_steps, "interleaving stuck after {steps} steps");
            let live: Vec<usize> = (0..self.procs.len())
                .filter(|&i| !self.procs[i].done())
                .collect();
            let pick = live[self.rng.below(live.len())];
            self.step(pick, &mut events);
        }
        events
    }

    /// Executes one shared-memory operation of processor `i`.
    fn step(&mut self, i: usize, events: &mut Vec<SimEvent>) {
        let mut proc = self.procs[i];
        let size = self.size as Value;
        match &mut proc {
            Proc::Insert { datum, state } => match *state {
                InsState::TirTest => {
                    // The appendix's initial test: "If S+Delta <= Bound".
                    if self.para.load(A_UPPER) + 1 > size {
                        events.push(SimEvent::InsertOverflow(*datum));
                        *state = InsState::Done;
                    } else {
                        *state = InsState::TirRetest;
                    }
                }
                InsState::TirRetest => {
                    if self.para.fetch_add(A_UPPER, 1) < size {
                        *state = InsState::ClaimSlot;
                    } else {
                        // Undo and fail. (The undo is a separate memory op,
                        // but folding it into this step cannot create new
                        // outcomes: no other proc reads between them in any
                        // serialization where it would matter for safety.)
                        let _ = self.para.fetch_add(A_UPPER, -1);
                        events.push(SimEvent::InsertOverflow(*datum));
                        *state = InsState::Done;
                    }
                }
                InsState::ClaimSlot => {
                    let raw = self.para.fetch_add(A_INSERT_PTR, 1);
                    *state = InsState::WaitTurn { raw };
                }
                InsState::WaitTurn { raw } => {
                    let cell = (raw % size) as usize;
                    let generation = raw / size;
                    // "Wait turn at MyI": one load per step while spinning.
                    if self.para.load(A_CELLS + 2 * cell + 1) == 2 * generation {
                        *state = InsState::WriteCell { raw };
                    }
                }
                InsState::WriteCell { raw } => {
                    let cell = (raw % size) as usize;
                    let generation = raw / size;
                    self.para.store(A_CELLS + 2 * cell, *datum);
                    self.para.store(A_CELLS + 2 * cell + 1, 2 * generation + 1);
                    *state = InsState::BumpLower;
                }
                InsState::BumpLower => {
                    let _ = self.para.fetch_add(A_LOWER, 1);
                    events.push(SimEvent::InsertDone(*datum));
                    *state = InsState::Done;
                }
                InsState::Done => {}
            },
            Proc::Delete { id, state } => match *state {
                DelState::TdrTest => {
                    if self.para.load(A_LOWER) - 1 < 0 {
                        events.push(SimEvent::DeleteUnderflow(*id));
                        *state = DelState::Done;
                    } else {
                        *state = DelState::TdrRetest;
                    }
                }
                DelState::TdrRetest => {
                    if self.para.fetch_add(A_LOWER, -1) > 0 {
                        *state = DelState::ClaimSlot;
                    } else {
                        let _ = self.para.fetch_add(A_LOWER, 1);
                        events.push(SimEvent::DeleteUnderflow(*id));
                        *state = DelState::Done;
                    }
                }
                DelState::ClaimSlot => {
                    let raw = self.para.fetch_add(A_DELETE_PTR, 1);
                    *state = DelState::WaitTurn { raw };
                }
                DelState::WaitTurn { raw } => {
                    let cell = (raw % size) as usize;
                    let generation = raw / size;
                    if self.para.load(A_CELLS + 2 * cell + 1) == 2 * generation + 1 {
                        *state = DelState::ReadCell { raw };
                    }
                }
                DelState::ReadCell { raw } => {
                    let cell = (raw % size) as usize;
                    let generation = raw / size;
                    let v = self.para.load(A_CELLS + 2 * cell);
                    self.para
                        .store(A_CELLS + 2 * cell + 1, 2 * (generation + 1));
                    events.push(SimEvent::DeleteDone(*id, v));
                    *state = DelState::DropUpper;
                }
                DelState::DropUpper => {
                    // "deletions do not decrement #Qu until after they have
                    // removed their data".
                    let _ = self.para.fetch_add(A_UPPER, -1);
                    *state = DelState::Done;
                }
                DelState::Done => {}
            },
        }
        self.procs[i] = proc;
    }

    /// Asserts conservation: every deleted datum was inserted exactly once,
    /// and the queue's final occupancy equals successful inserts minus
    /// successful deletes.
    ///
    /// # Panics
    ///
    /// Panics if the trace violates conservation.
    pub fn check_conservation(&self, events: &[SimEvent]) {
        use std::collections::HashMap;
        let mut inserted: HashMap<Value, usize> = HashMap::new();
        let mut deleted: HashMap<Value, usize> = HashMap::new();
        let (mut ins_ok, mut del_ok) = (0i64, 0i64);
        for e in events {
            match e {
                SimEvent::InsertDone(v) => {
                    *inserted.entry(*v).or_default() += 1;
                    ins_ok += 1;
                }
                SimEvent::DeleteDone(_, v) => {
                    *deleted.entry(*v).or_default() += 1;
                    del_ok += 1;
                }
                _ => {}
            }
        }
        for (v, n) in &deleted {
            assert_eq!(
                Some(n),
                inserted.get(v),
                "datum {v} deleted {n} times but inserted differently"
            );
        }
        let residual = ins_ok - del_ok;
        assert!(residual >= 0, "more deletes than inserts succeeded");
        assert_eq!(
            self.para.load(A_LOWER),
            residual,
            "#Qi must equal residual occupancy at rest"
        );
        assert_eq!(
            self.para.load(A_UPPER),
            residual,
            "#Qu must equal residual occupancy at rest"
        );
        assert!(residual <= self.size as i64, "occupancy exceeded capacity");
    }

    /// Asserts the appendix's FIFO condition over the trace.
    ///
    /// # Panics
    ///
    /// Panics if some pair of items violates the condition.
    pub fn check_fifo_condition(&self, events: &[SimEvent]) {
        use std::collections::HashMap;
        let mut ins_start: HashMap<Value, usize> = HashMap::new();
        let mut ins_done: HashMap<Value, usize> = HashMap::new();
        let mut del_start: HashMap<Value, usize> = HashMap::new(); // by datum, filled post-hoc
        let mut del_done: HashMap<Value, usize> = HashMap::new();
        let mut del_start_by_id: HashMap<usize, usize> = HashMap::new();
        for (t, e) in events.iter().enumerate() {
            match e {
                SimEvent::InsertStart(v) => {
                    ins_start.entry(*v).or_insert(t);
                }
                SimEvent::InsertDone(v) => {
                    ins_done.insert(*v, t);
                }
                SimEvent::DeleteStart(id) => {
                    del_start_by_id.insert(*id, t);
                }
                SimEvent::DeleteDone(id, v) => {
                    del_done.insert(*v, t);
                    del_start.insert(*v, del_start_by_id[id]);
                }
                _ => {}
            }
        }
        for (&p, &p_done) in &ins_done {
            for (&q, &q_start) in &ins_start {
                if p == q || p_done >= q_start {
                    continue;
                }
                // insert(p) completed before insert(q) started.
                if let (Some(&q_del_done), Some(&p_del_start)) =
                    (del_done.get(&q), del_start.get(&p))
                {
                    assert!(
                        q_del_done >= p_del_start,
                        "FIFO violated: {q} (inserted after {p} finished) was \
                         fully deleted before any deletion of {p} started"
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_check(size: usize, inserts: i64, deletes: usize, seed: u64) {
        let mut sim = InterleavedQueueSim::new(size, seed);
        for v in 0..inserts {
            sim.spawn_insert(v + 100);
        }
        for _ in 0..deletes {
            sim.spawn_delete();
        }
        let events = sim.run(2_000_000);
        sim.check_conservation(&events);
        sim.check_fifo_condition(&events);
    }

    #[test]
    fn balanced_traffic_many_seeds() {
        for seed in 0..40 {
            run_check(8, 24, 24, seed);
        }
    }

    #[test]
    fn overflow_pressure() {
        // Far more inserts than capacity+deletes: overflows must occur and
        // everything must stay consistent.
        for seed in 0..20 {
            let mut sim = InterleavedQueueSim::new(4, seed);
            for v in 0..30 {
                sim.spawn_insert(v);
            }
            for _ in 0..5 {
                sim.spawn_delete();
            }
            let events = sim.run(2_000_000);
            let overflows = events
                .iter()
                .filter(|e| matches!(e, SimEvent::InsertOverflow(_)))
                .count();
            assert!(
                overflows > 0,
                "pressure must trigger overflow (seed {seed})"
            );
            sim.check_conservation(&events);
            sim.check_fifo_condition(&events);
        }
    }

    #[test]
    fn underflow_pressure() {
        for seed in 0..20 {
            let mut sim = InterleavedQueueSim::new(4, seed);
            sim.spawn_insert(7);
            for _ in 0..10 {
                sim.spawn_delete();
            }
            let events = sim.run(2_000_000);
            let underflows = events
                .iter()
                .filter(|e| matches!(e, SimEvent::DeleteUnderflow(_)))
                .count();
            assert!(underflows > 0, "seed {seed}");
            sim.check_conservation(&events);
        }
    }

    #[test]
    fn tiny_queue_heavy_wraparound() {
        for seed in 0..20 {
            run_check(1, 12, 12, seed);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut sim = InterleavedQueueSim::new(4, seed);
            for v in 0..8 {
                sim.spawn_insert(v);
            }
            for _ in 0..8 {
                sim.spawn_delete();
            }
            sim.run(1_000_000)
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10), "different seeds explore differently");
    }
}

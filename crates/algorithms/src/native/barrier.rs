//! A fetch-and-add barrier.
//!
//! Barriers are the synchronization shape dominating the paper's workloads
//! (TRED2 does one per Householder step). A central sense-reversing
//! barrier needs exactly one fetch-and-add per arrival — on the real
//! machine all `P` arrivals combine in the network and cost one memory
//! access in total (§3.1.3).

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A reusable sense-reversing barrier built on fetch-and-add.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use ultra_algorithms::FaaBarrier;
///
/// let barrier = Arc::new(FaaBarrier::new(4));
/// let handles: Vec<_> = (0..4)
///     .map(|_| {
///         let b = Arc::clone(&barrier);
///         std::thread::spawn(move || {
///             b.wait();
///         })
///     })
///     .collect();
/// for h in handles {
///     h.join().unwrap();
/// }
/// ```
#[derive(Debug)]
pub struct FaaBarrier {
    parties: i64,
    /// Arrivals in the current episode.
    count: AtomicI64,
    /// Episode number; waiters spin on its change (the "sense").
    generation: AtomicU64,
}

impl FaaBarrier {
    /// Creates a barrier for `parties` threads.
    ///
    /// # Panics
    ///
    /// Panics if `parties` is zero.
    #[must_use]
    pub fn new(parties: usize) -> Self {
        assert!(parties > 0, "barrier needs at least one party");
        Self {
            parties: parties as i64,
            count: AtomicI64::new(0),
            generation: AtomicU64::new(0),
        }
    }

    /// Number of participating threads.
    #[must_use]
    pub fn parties(&self) -> usize {
        self.parties as usize
    }

    /// Blocks until all parties have called `wait`. Returns `true` for the
    /// last arriver (the "leader", mirroring `std::sync::Barrier`).
    pub fn wait(&self) -> bool {
        let gen = self.generation.load(Ordering::SeqCst);
        // One fetch-and-add per arrival: on Ultracomputer hardware all P of
        // these combine into a single memory update.
        let arrival = self.count.fetch_add(1, Ordering::SeqCst);
        if arrival + 1 == self.parties {
            self.count.store(0, Ordering::SeqCst);
            self.generation.fetch_add(1, Ordering::SeqCst);
            true
        } else {
            while self.generation.load(Ordering::SeqCst) == gen {
                std::hint::spin_loop();
                std::thread::yield_now();
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn single_party_never_blocks() {
        let b = FaaBarrier::new(1);
        assert!(b.wait());
        assert!(b.wait());
        assert_eq!(b.parties(), 1);
    }

    #[test]
    fn exactly_one_leader_per_episode() {
        let b = Arc::new(FaaBarrier::new(8));
        let leaders = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let b = Arc::clone(&b);
                let leaders = Arc::clone(&leaders);
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        if b.wait() {
                            leaders.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(leaders.load(Ordering::SeqCst), 50);
    }

    /// The barrier must actually separate phases: no thread may observe a
    /// phase counter from two episodes ahead.
    #[test]
    fn phases_are_separated() {
        let b = Arc::new(FaaBarrier::new(4));
        let phase = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let b = Arc::clone(&b);
                let phase = Arc::clone(&phase);
                std::thread::spawn(move || {
                    for round in 0..100 {
                        let seen = phase.load(Ordering::SeqCst);
                        assert!(
                            seen == round || seen == round + 1,
                            "phase skew: saw {seen} in round {round}"
                        );
                        if b.wait() {
                            phase.fetch_add(1, Ordering::SeqCst);
                        }
                        b.wait();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(phase.load(Ordering::SeqCst), 100);
    }

    #[test]
    #[should_panic(expected = "at least one party")]
    fn zero_parties_rejected() {
        let _ = FaaBarrier::new(0);
    }
}

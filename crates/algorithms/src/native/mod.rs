//! Real-thread fetch-and-add algorithms and their lock-based baselines.
//!
//! `std::sync::atomic`'s `fetch_add` provides the indivisible semantics of
//! §2.2 (without hardware combining — the simulator in `ultra-net` models
//! that); these types demonstrate that the *software* structure the paper
//! advocates needs no global critical section.

pub mod barrier;
pub mod counter;
pub mod loop_sched;
pub mod queue;
pub mod rwlock;
pub mod semaphore;

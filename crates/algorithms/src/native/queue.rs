//! The appendix queue: "Management of Highly Parallel Queues".
//!
//! The paper refutes Deo, Pang & Lord's claim that a shared queue caps
//! speedup: "a queue can be shared among processors without using any code
//! that could create serial bottlenecks." The structure is:
//!
//! * a circular array `Q[0..Size)`;
//! * insert/delete pointers `I` and `D` advanced by **fetch-and-add** —
//!   each operation claims a distinct slot with one indivisible add;
//! * lower/upper occupancy bounds `#Qi`/`#Qu` guarded by
//!   **test-increment-retest** (TIR) and **test-decrement-retest** (TDR)
//!   sequences that detect overflow/underflow without a critical section —
//!   including the "apparently redundant" initial test whose removal
//!   "permits unacceptable race conditions";
//! * a per-slot "wait turn" so that an insert into a slot whose previous
//!   generation has not yet been consumed waits its turn.
//!
//! [`UltraQueue`] implements exactly that shape. Slot turn-taking uses a
//! per-slot generation counter; slot payloads move under a per-slot lock,
//! which models the paper's per-cell turn discipline without `unsafe` —
//! the *shared* coordination (slot assignment, bounds) remains pure
//! fetch-and-add, which is the paper's point.
//!
//! [`MutexQueue`] is the baseline with the global critical section.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Mutex;

/// Error returned when inserting into a full queue (the appendix's
/// `QueueOverflow` flag), handing the datum back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull<T>(pub T);

impl<T> std::fmt::Display for QueueFull<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "queue overflow")
    }
}

impl<T: std::fmt::Debug> std::error::Error for QueueFull<T> {}

struct Slot<T> {
    /// 2·gen = open for the generation-`gen` insert; 2·gen+1 = holding the
    /// generation-`gen` item, open for its delete.
    turn: AtomicU64,
    value: Mutex<Option<T>>,
}

/// The appendix's critical-section-free bounded FIFO queue.
///
/// # Example
///
/// ```
/// use ultra_algorithms::UltraQueue;
///
/// let q = UltraQueue::new(4);
/// q.try_enqueue(1).unwrap();
/// q.try_enqueue(2).unwrap();
/// assert_eq!(q.try_dequeue(), Some(1));
/// assert_eq!(q.try_dequeue(), Some(2));
/// assert_eq!(q.try_dequeue(), None);
/// ```
pub struct UltraQueue<T> {
    slots: Vec<Slot<T>>,
    /// Insert pointer `I` (monotonically increasing; slot = I mod Size).
    insert_ptr: AtomicI64,
    /// Delete pointer `D`.
    delete_ptr: AtomicI64,
    /// Upper bound `#Qu` on the number of items.
    upper: AtomicI64,
    /// Lower bound `#Qi`.
    lower: AtomicI64,
}

impl<T> UltraQueue<T> {
    /// Creates a queue of capacity `size`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    #[must_use]
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "queue needs at least one slot");
        Self {
            slots: (0..size)
                .map(|_| Slot {
                    turn: AtomicU64::new(0),
                    value: Mutex::new(None),
                })
                .collect(),
            insert_ptr: AtomicI64::new(0),
            delete_ptr: AtomicI64::new(0),
            upper: AtomicI64::new(0),
            lower: AtomicI64::new(0),
        }
    }

    /// Capacity `Size`.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// A conservative item count (between `#Qi` and `#Qu`).
    #[must_use]
    pub fn approx_len(&self) -> usize {
        self.lower.load(Ordering::SeqCst).max(0) as usize
    }

    /// The appendix's TIR: test, increment, retest; undo on failure.
    fn tir(s: &AtomicI64, delta: i64, bound: i64) -> bool {
        // The initial test is NOT redundant: without it, a storm of
        // attempts against a full queue would push `s` far above `bound`
        // and let a concurrent successful delete's decrement be masked
        // (the race the appendix warns about).
        if s.load(Ordering::SeqCst) + delta > bound {
            return false;
        }
        if s.fetch_add(delta, Ordering::SeqCst) + delta <= bound {
            true
        } else {
            s.fetch_add(-delta, Ordering::SeqCst);
            false
        }
    }

    /// The appendix's TDR.
    fn tdr(s: &AtomicI64, delta: i64) -> bool {
        if s.load(Ordering::SeqCst) - delta < 0 {
            return false;
        }
        if s.fetch_add(-delta, Ordering::SeqCst) - delta >= 0 {
            true
        } else {
            s.fetch_add(delta, Ordering::SeqCst);
            false
        }
    }

    /// Non-blocking insert; `Err(QueueFull)` is the appendix's
    /// `QueueOverflow` outcome.
    ///
    /// # Errors
    ///
    /// Returns the datum back if the queue is full.
    pub fn try_enqueue(&self, data: T) -> Result<(), QueueFull<T>> {
        if !Self::tir(&self.upper, 1, self.capacity() as i64) {
            return Err(QueueFull(data));
        }
        // MyI <- Mod(FetchAdd(I,1), Size); the raw value also fixes the
        // slot generation for turn-taking.
        let raw = self.insert_ptr.fetch_add(1, Ordering::SeqCst);
        let size = self.capacity() as i64;
        let slot = &self.slots[(raw % size) as usize];
        let generation = (raw / size) as u64;
        // "Wait turn at MyI".
        while slot.turn.load(Ordering::SeqCst) != 2 * generation {
            std::hint::spin_loop();
            std::thread::yield_now();
        }
        *slot.value.lock().expect("slot lock poisoned") = Some(data);
        slot.turn.store(2 * generation + 1, Ordering::SeqCst);
        // FetchAdd(#Qi, 1).
        self.lower.fetch_add(1, Ordering::SeqCst);
        Ok(())
    }

    /// Non-blocking delete; `None` is the appendix's `QueueUnderflow`.
    pub fn try_dequeue(&self) -> Option<T> {
        if !Self::tdr(&self.lower, 1) {
            return None;
        }
        let raw = self.delete_ptr.fetch_add(1, Ordering::SeqCst);
        let size = self.capacity() as i64;
        let slot = &self.slots[(raw % size) as usize];
        let generation = (raw / size) as u64;
        // "Wait turn at MyD".
        while slot.turn.load(Ordering::SeqCst) != 2 * generation + 1 {
            std::hint::spin_loop();
            std::thread::yield_now();
        }
        let data = slot
            .value
            .lock()
            .expect("slot lock poisoned")
            .take()
            .expect("turn granted, item present");
        slot.turn.store(2 * (generation + 1), Ordering::SeqCst);
        // FetchAdd(#Qu, -1): deletions decrement the upper bound only
        // after removing their data.
        self.upper.fetch_add(-1, Ordering::SeqCst);
        Some(data)
    }

    /// Blocking insert: retries (the appendix: "one possibility is simply
    /// to retry an offending insert").
    pub fn enqueue(&self, mut data: T) {
        loop {
            match self.try_enqueue(data) {
                Ok(()) => return,
                Err(QueueFull(d)) => {
                    data = d;
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Blocking delete: retries until an item appears.
    pub fn dequeue(&self) -> T {
        loop {
            if let Some(v) = self.try_dequeue() {
                return v;
            }
            std::thread::yield_now();
        }
    }
}

/// The baseline: a queue behind one global lock — Deo, Pang & Lord's
/// "every processor demands private use of the Q" situation.
pub struct MutexQueue<T> {
    inner: Mutex<VecDeque<T>>,
    capacity: usize,
}

impl<T> MutexQueue<T> {
    /// Creates a queue of capacity `size`.
    #[must_use]
    pub fn new(size: usize) -> Self {
        Self {
            inner: Mutex::new(VecDeque::with_capacity(size)),
            capacity: size,
        }
    }

    /// Locked insert.
    ///
    /// # Errors
    ///
    /// Returns the datum back if the queue is full.
    pub fn try_enqueue(&self, data: T) -> Result<(), QueueFull<T>> {
        let mut q = self.inner.lock().expect("queue lock poisoned");
        if q.len() >= self.capacity {
            return Err(QueueFull(data));
        }
        q.push_back(data);
        Ok(())
    }

    /// Locked delete.
    pub fn try_dequeue(&self) -> Option<T> {
        self.inner.lock().expect("queue lock poisoned").pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;

    #[test]
    fn fifo_single_threaded() {
        let q = UltraQueue::new(3);
        q.try_enqueue("a").unwrap();
        q.try_enqueue("b").unwrap();
        q.try_enqueue("c").unwrap();
        assert!(matches!(q.try_enqueue("d"), Err(QueueFull("d"))));
        assert_eq!(q.try_dequeue(), Some("a"));
        q.try_enqueue("d").unwrap();
        assert_eq!(q.try_dequeue(), Some("b"));
        assert_eq!(q.try_dequeue(), Some("c"));
        assert_eq!(q.try_dequeue(), Some("d"));
        assert_eq!(q.try_dequeue(), None);
    }

    #[test]
    fn wraparound_many_generations() {
        let q = UltraQueue::new(2);
        for i in 0..100 {
            q.try_enqueue(i).unwrap();
            assert_eq!(q.try_dequeue(), Some(i));
        }
    }

    #[test]
    fn approx_len_tracks() {
        let q = UltraQueue::new(8);
        assert_eq!(q.approx_len(), 0);
        q.try_enqueue(1).unwrap();
        q.try_enqueue(2).unwrap();
        assert_eq!(q.approx_len(), 2);
        let _ = q.try_dequeue();
        assert_eq!(q.approx_len(), 1);
    }

    #[test]
    fn concurrent_producers_consumers_lose_nothing() {
        let q = Arc::new(UltraQueue::new(64));
        let producers = 4;
        let consumers = 4;
        let per = 800i64;
        let mut handles = Vec::new();
        for p in 0..producers {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..per {
                    q.enqueue(p * per + i);
                }
            }));
        }
        let consumed: Vec<_> = (0..consumers)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    for _ in 0..(producers * per / consumers) {
                        got.push(q.dequeue());
                    }
                    got
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut all = HashSet::new();
        for h in consumed {
            for v in h.join().unwrap() {
                assert!(all.insert(v), "item {v} delivered twice");
            }
        }
        assert_eq!(all.len(), (producers * per) as usize, "nothing lost");
        assert_eq!(q.try_dequeue(), None, "queue drained");
    }

    /// The appendix's FIFO correctness condition: "If insertion of a data
    /// item p is completed before insertion of another data item q is
    /// started, then it must not be possible for a deletion yielding q to
    /// complete before a deletion yielding p has started."
    ///
    /// A single producer inserting 0,1,2,… sequentially makes every insert
    /// ordered; concurrent consumers' outputs must therefore each be
    /// internally ordered... (globally, each consumer sees an increasing
    /// subsequence).
    #[test]
    fn fifo_condition_with_sequential_producer() {
        let q = Arc::new(UltraQueue::new(16));
        let total = 3_000i64;
        let consumers = 4;
        let takers: Vec<_> = (0..consumers)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    loop {
                        match q.try_dequeue() {
                            Some(v) if v < 0 => break,
                            Some(v) => got.push(v),
                            None => std::thread::yield_now(),
                        }
                    }
                    got
                })
            })
            .collect();
        for i in 0..total {
            q.enqueue(i);
        }
        for _ in 0..consumers {
            q.enqueue(-1); // poison
        }
        let mut count = 0;
        for t in takers {
            let got = t.join().unwrap();
            assert!(
                got.windows(2).all(|w| w[0] < w[1]),
                "each consumer must see an increasing subsequence"
            );
            count += got.len();
        }
        assert_eq!(count as i64, total);
    }

    #[test]
    fn tir_initial_test_prevents_runaway() {
        // Hammer a full queue with failed inserts: #Qu must stay exactly at
        // capacity (the initial test keeps failed attempts from inflating
        // it even transiently in the single-threaded case).
        let q = UltraQueue::new(2);
        q.try_enqueue(1).unwrap();
        q.try_enqueue(2).unwrap();
        for _ in 0..1000 {
            assert!(q.try_enqueue(9).is_err());
        }
        assert_eq!(q.upper.load(Ordering::SeqCst), 2);
        // Deletes still work and observe a consistent queue.
        assert_eq!(q.try_dequeue(), Some(1));
    }

    #[test]
    fn mutex_queue_baseline_behaves() {
        let q = MutexQueue::new(2);
        q.try_enqueue(1).unwrap();
        q.try_enqueue(2).unwrap();
        assert!(q.try_enqueue(3).is_err());
        assert_eq!(q.try_dequeue(), Some(1));
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_capacity_rejected() {
        let _ = UltraQueue::<i32>::new(0);
    }
}

//! Readers–writers coordination from fetch-phi primitives (§2.3).
//!
//! Gottlieb, Lubachevsky & Rudolph give a "completely parallel solution to
//! the readers-writers problem" in which readers never execute serial
//! code: a reader announces itself with one fetch-and-add, checks that no
//! writer holds the resource, and proceeds. Writers — "inherently serial,"
//! as the paper's footnote concedes — acquire exclusivity with a
//! test-and-set, which §2.4 derives as a special case of fetch-and-phi
//! (`Fetch&Or(V, TRUE)`).
//!
//! The reader fast path here is exactly two fetch-and-adds (announce,
//! retract-on-conflict-or-release) with no critical section; on
//! Ultracomputer hardware any number of simultaneous reader arrivals
//! combine into one memory transaction.

use std::sync::atomic::{AtomicI64, Ordering};

/// Writer-presence flag packed into the high bits of the state word;
/// low bits count readers.
const WRITER: i64 = 1 << 40;

/// A fetch-and-add readers–writers coordination.
///
/// This is a *coordination skeleton*, deliberately close to the paper's
/// algorithm: `read(f)` / `write(f)` run a closure under the respective
/// permission. Writers are serialized; readers run fully in parallel.
///
/// # Example
///
/// ```
/// use ultra_algorithms::FaaRwLock;
///
/// let lock = FaaRwLock::new();
/// let x = lock.read(|| 21) + lock.write(|| 21);
/// assert_eq!(x, 42);
/// ```
#[derive(Debug, Default)]
pub struct FaaRwLock {
    /// `readers + WRITER·writer_present`.
    state: AtomicI64,
}

impl FaaRwLock {
    /// Creates an unheld coordination.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `f` with shared (reader) permission.
    pub fn read<R>(&self, f: impl FnOnce() -> R) -> R {
        loop {
            // Announce: one fetch-and-add; no serial section.
            let seen = self.state.fetch_add(1, Ordering::SeqCst);
            if seen < WRITER {
                break; // no writer present
            }
            // A writer holds or awaits the resource: retract and retry.
            self.state.fetch_add(-1, Ordering::SeqCst);
            while self.state.load(Ordering::SeqCst) >= WRITER {
                std::hint::spin_loop();
                std::thread::yield_now();
            }
        }
        let out = f();
        self.state.fetch_add(-1, Ordering::SeqCst);
        out
    }

    /// Runs `f` with exclusive (writer) permission.
    pub fn write<R>(&self, f: impl FnOnce() -> R) -> R {
        // Acquire the writer flag: fetch-and-add of WRITER acts as the
        // test-and-set (the old value tells us whether another writer was
        // present).
        loop {
            let seen = self.state.fetch_add(WRITER, Ordering::SeqCst);
            if seen < WRITER {
                break;
            }
            self.state.fetch_add(-WRITER, Ordering::SeqCst);
            while self.state.load(Ordering::SeqCst) >= WRITER {
                std::hint::spin_loop();
                std::thread::yield_now();
            }
        }
        // Drain readers that announced before the flag went up.
        while self.state.load(Ordering::SeqCst) % WRITER != 0 {
            std::hint::spin_loop();
            std::thread::yield_now();
        }
        let out = f();
        self.state.fetch_add(-WRITER, Ordering::SeqCst);
        out
    }

    /// Current reader count (diagnostic).
    #[must_use]
    pub fn readers(&self) -> i64 {
        self.state.load(Ordering::SeqCst) % WRITER
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicI64 as TestAtomic;
    use std::sync::Arc;

    #[test]
    fn uncontended_paths() {
        let l = FaaRwLock::new();
        assert_eq!(l.read(|| 1), 1);
        assert_eq!(l.write(|| 2), 2);
        assert_eq!(l.readers(), 0);
    }

    #[test]
    fn readers_exclude_writers_and_counts_stay_exact() {
        let l = Arc::new(FaaRwLock::new());
        let value = Arc::new(TestAtomic::new(0));
        let mut handles = Vec::new();
        // Writers increment the protected value twice non-atomically; any
        // reader observing an odd value caught a writer mid-update.
        for _ in 0..4 {
            let l = Arc::clone(&l);
            let value = Arc::clone(&value);
            handles.push(std::thread::spawn(move || {
                for _ in 0..500 {
                    l.write(|| {
                        let v = value.load(Ordering::SeqCst);
                        value.store(v + 1, Ordering::SeqCst);
                        std::hint::spin_loop();
                        value.store(v + 2, Ordering::SeqCst);
                    });
                }
            }));
        }
        for _ in 0..4 {
            let l = Arc::clone(&l);
            let value = Arc::clone(&value);
            handles.push(std::thread::spawn(move || {
                for _ in 0..2000 {
                    l.read(|| {
                        let v = value.load(Ordering::SeqCst);
                        assert_eq!(v % 2, 0, "reader observed a torn write");
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(value.load(Ordering::SeqCst), 4 * 500 * 2);
        assert_eq!(l.readers(), 0);
    }

    #[test]
    fn many_parallel_readers_make_progress() {
        let l = Arc::new(FaaRwLock::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || {
                    let mut acc = 0u64;
                    for i in 0..10_000u64 {
                        acc += l.read(|| i);
                    }
                    acc
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 10_000 * 9_999 / 2);
        }
    }
}

//! Self-scheduled parallel loops (§2.2's shared-index idiom).
//!
//! "Consider several PEs concurrently applying fetch-and-add, with an
//! increment of 1, to a shared array index. Each PE obtains an index to a
//! distinct array element" — which is all a dynamically scheduled parallel
//! loop needs. [`SelfSchedule`] hands out index chunks with one
//! fetch-and-add each; [`parallel_for`] wraps it with scoped threads.

use std::sync::atomic::{AtomicI64, Ordering};

/// A shared loop counter handing out disjoint index chunks.
///
/// # Example
///
/// ```
/// use ultra_algorithms::SelfSchedule;
///
/// let sched = SelfSchedule::new(10);
/// let mut seen = Vec::new();
/// while let Some(range) = sched.next_chunk(4) {
///     seen.extend(range);
/// }
/// assert_eq!(seen, (0..10).collect::<Vec<_>>());
/// ```
#[derive(Debug)]
pub struct SelfSchedule {
    counter: AtomicI64,
    limit: i64,
}

impl SelfSchedule {
    /// Creates a schedule over indices `0..limit`.
    #[must_use]
    pub fn new(limit: usize) -> Self {
        Self {
            counter: AtomicI64::new(0),
            limit: limit as i64,
        }
    }

    /// Claims the next chunk of up to `chunk` indices; `None` when the
    /// iteration space is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero.
    pub fn next_chunk(&self, chunk: usize) -> Option<std::ops::Range<usize>> {
        assert!(chunk > 0, "chunk must be positive");
        let start = self.counter.fetch_add(chunk as i64, Ordering::SeqCst);
        if start >= self.limit {
            return None;
        }
        let end = (start + chunk as i64).min(self.limit);
        Some(start as usize..end as usize)
    }

    /// Whether all indices have been claimed.
    #[must_use]
    pub fn is_exhausted(&self) -> bool {
        self.counter.load(Ordering::SeqCst) >= self.limit
    }
}

/// Runs `f(i)` for every `i in 0..n` on `threads` threads, dynamically
/// self-scheduled in chunks of `chunk`.
///
/// # Panics
///
/// Panics if `threads` or `chunk` is zero, or if `f` panics on any thread.
pub fn parallel_for<F>(n: usize, threads: usize, chunk: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    assert!(threads > 0, "need at least one thread");
    let sched = SelfSchedule::new(n);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                while let Some(range) = sched.next_chunk(chunk) {
                    for i in range {
                        f(i);
                    }
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn chunks_cover_range_exactly_once() {
        let sched = SelfSchedule::new(100);
        let mut seen = [false; 100];
        while let Some(r) = sched.next_chunk(7) {
            for i in r {
                assert!(!seen[i], "index {i} claimed twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
        assert!(sched.is_exhausted());
    }

    #[test]
    fn empty_range() {
        let sched = SelfSchedule::new(0);
        assert!(sched.next_chunk(4).is_none());
    }

    #[test]
    fn final_partial_chunk_clipped() {
        let sched = SelfSchedule::new(5);
        assert_eq!(sched.next_chunk(4), Some(0..4));
        assert_eq!(sched.next_chunk(4), Some(4..5));
        assert_eq!(sched.next_chunk(4), None);
    }

    #[test]
    fn parallel_for_touches_every_index_once() {
        let n = 10_000;
        let counters: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(n, 8, 16, |i| {
            counters[i].fetch_add(1, Ordering::SeqCst);
        });
        assert!(counters.iter().all(|c| c.load(Ordering::SeqCst) == 1));
    }

    #[test]
    #[should_panic(expected = "chunk must be positive")]
    fn zero_chunk_rejected() {
        let sched = SelfSchedule::new(4);
        let _ = sched.next_chunk(0);
    }
}

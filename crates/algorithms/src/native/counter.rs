//! Shared counters: fetch-and-add vs. a lock-based baseline.
//!
//! §2.2's first example of fetch-and-add is "several PEs concurrently
//! applying fetch-and-add, with an increment of 1, to a shared array
//! index. Each PE obtains an index to a distinct array element … the
//! shared index receives the appropriate total increment."

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Mutex;

/// A shared counter whose updates are single fetch-and-adds.
///
/// # Example
///
/// ```
/// use ultra_algorithms::FaaCounter;
///
/// let c = FaaCounter::new(10);
/// assert_eq!(c.fetch_add(5), 10);
/// assert_eq!(c.get(), 15);
/// ```
#[derive(Debug, Default)]
pub struct FaaCounter(AtomicI64);

impl FaaCounter {
    /// Creates a counter holding `initial`.
    #[must_use]
    pub fn new(initial: i64) -> Self {
        Self(AtomicI64::new(initial))
    }

    /// The §2.2 primitive: returns the old value, adds `delta`.
    pub fn fetch_add(&self, delta: i64) -> i64 {
        self.0.fetch_add(delta, Ordering::SeqCst)
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::SeqCst)
    }

    /// Resets the counter (not atomic with respect to concurrent use).
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::SeqCst);
    }
}

/// The baseline the paper is arguing against: the same counter behind a
/// lock (a small critical section whose relative cost "rises with the
/// number of PEs", §2.3).
#[derive(Debug, Default)]
pub struct MutexCounter(Mutex<i64>);

impl MutexCounter {
    /// Creates a counter holding `initial`.
    #[must_use]
    pub fn new(initial: i64) -> Self {
        Self(Mutex::new(initial))
    }

    /// Lock, read, add, unlock.
    pub fn fetch_add(&self, delta: i64) -> i64 {
        let mut guard = self.0.lock().expect("counter lock poisoned");
        let old = *guard;
        *guard += delta;
        old
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        *self.0.lock().expect("counter lock poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;

    #[test]
    fn faa_returns_old_value() {
        let c = FaaCounter::new(7);
        assert_eq!(c.fetch_add(3), 7);
        assert_eq!(c.fetch_add(-2), 10);
        assert_eq!(c.get(), 8);
        c.set(0);
        assert_eq!(c.get(), 0);
    }

    /// §2.2: concurrent F&A(V, 1) hands out distinct indices and the total
    /// increment is exact.
    #[test]
    fn concurrent_faa_gives_distinct_indices() {
        let c = Arc::new(FaaCounter::new(0));
        let threads = 8;
        let per = 1000;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || (0..per).map(|_| c.fetch_add(1)).collect::<Vec<_>>())
            })
            .collect();
        let mut seen = HashSet::new();
        for h in handles {
            for v in h.join().unwrap() {
                assert!(seen.insert(v), "index {v} issued twice");
            }
        }
        assert_eq!(seen.len(), threads * per);
        assert_eq!(c.get(), (threads * per) as i64);
    }

    #[test]
    fn mutex_counter_agrees_semantically() {
        let c = MutexCounter::new(5);
        assert_eq!(c.fetch_add(2), 5);
        assert_eq!(c.get(), 7);
    }
}

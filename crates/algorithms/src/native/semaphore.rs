//! A counting semaphore built from TIR/TDR (appendix).
//!
//! The appendix's test-decrement-retest is exactly a non-blocking
//! semaphore `P`; `V` is one fetch-and-add. Gottlieb, Lubachevsky &
//! Rudolph present these among the "other fetch-and-add software
//! primitives" the paper alludes to. Acquisitions of a free semaphore are
//! a single fetch-and-add — combinable on Ultracomputer hardware, so any
//! number of simultaneous `P`s on a sufficiently provisioned semaphore
//! cost one memory access.

use std::sync::atomic::{AtomicI64, Ordering};

/// A counting semaphore whose fast paths are single fetch-and-adds.
///
/// # Example
///
/// ```
/// use ultra_algorithms::FaaSemaphore;
///
/// let sem = FaaSemaphore::new(2);
/// assert!(sem.try_acquire());
/// assert!(sem.try_acquire());
/// assert!(!sem.try_acquire(), "no permits left");
/// sem.release();
/// assert!(sem.try_acquire());
/// ```
#[derive(Debug)]
pub struct FaaSemaphore {
    permits: AtomicI64,
}

impl FaaSemaphore {
    /// Creates a semaphore holding `permits` permits.
    #[must_use]
    pub fn new(permits: usize) -> Self {
        Self {
            permits: AtomicI64::new(permits as i64),
        }
    }

    /// The appendix's TDR as a semaphore `P`: claim one permit if any
    /// remain. Never blocks, never enters a critical section.
    pub fn try_acquire(&self) -> bool {
        // Initial test (prevents the unbounded-decrement race).
        if self.permits.load(Ordering::SeqCst) < 1 {
            return false;
        }
        // Decrement, retest, undo on failure.
        if self.permits.fetch_add(-1, Ordering::SeqCst) >= 1 {
            true
        } else {
            self.permits.fetch_add(1, Ordering::SeqCst);
            false
        }
    }

    /// Blocking `P`: spins until a permit is claimed.
    pub fn acquire(&self) {
        while !self.try_acquire() {
            std::hint::spin_loop();
            std::thread::yield_now();
        }
    }

    /// `V`: return one permit (a single fetch-and-add).
    pub fn release(&self) {
        self.permits.fetch_add(1, Ordering::SeqCst);
    }

    /// Permits currently available (may be transiently conservative while
    /// failed acquires undo themselves).
    #[must_use]
    pub fn available(&self) -> i64 {
        self.permits.load(Ordering::SeqCst)
    }

    /// Runs `f` holding one permit.
    pub fn with_permit<R>(&self, f: impl FnOnce() -> R) -> R {
        self.acquire();
        let out = f();
        self.release();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn permits_count_down_and_up() {
        let s = FaaSemaphore::new(3);
        assert_eq!(s.available(), 3);
        assert!(s.try_acquire());
        assert!(s.try_acquire());
        assert!(s.try_acquire());
        assert!(!s.try_acquire());
        assert_eq!(s.available(), 0);
        s.release();
        assert_eq!(s.available(), 1);
    }

    #[test]
    fn zero_permit_semaphore_blocks_until_release() {
        let s = Arc::new(FaaSemaphore::new(0));
        let s2 = Arc::clone(&s);
        let t = std::thread::spawn(move || {
            s2.acquire();
            7
        });
        std::thread::yield_now();
        s.release();
        assert_eq!(t.join().unwrap(), 7);
    }

    #[test]
    fn concurrency_never_exceeds_permits() {
        let permits = 3usize;
        let s = Arc::new(FaaSemaphore::new(permits));
        let inside = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let s = Arc::clone(&s);
                let inside = Arc::clone(&inside);
                let peak = Arc::clone(&peak);
                std::thread::spawn(move || {
                    for _ in 0..300 {
                        s.with_permit(|| {
                            let now = inside.fetch_add(1, Ordering::SeqCst) + 1;
                            peak.fetch_max(now, Ordering::SeqCst);
                            assert!(now <= permits, "overadmitted: {now}");
                            inside.fetch_sub(1, Ordering::SeqCst);
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.available(), permits as i64);
        assert!(peak.load(Ordering::SeqCst) <= permits);
    }

    #[test]
    fn failed_acquires_leave_no_debt() {
        let s = FaaSemaphore::new(1);
        assert!(s.try_acquire());
        for _ in 0..100 {
            assert!(!s.try_acquire());
        }
        s.release();
        assert_eq!(s.available(), 1, "failed P's must fully undo");
        assert!(s.try_acquire());
    }
}

//! Property tests of the PNI pipeline policy (§3.4): arbitrary
//! issue/complete sequences must preserve the one-outstanding-per-location
//! invariant, id uniqueness, and exact outstanding accounting.

use proptest::prelude::*;
use std::collections::{HashMap, HashSet};
use ultra_mem::{AddressHasher, TranslationMode};
use ultra_net::message::{Message, MsgKind, Reply};
use ultra_pe::pni::{Pni, PniError};
use ultra_sim::PeId;

#[derive(Debug, Clone)]
enum Action {
    /// Issue a load to this small virtual address.
    Issue(usize),
    /// Complete the i-th (mod len) outstanding request.
    Complete(usize),
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        (0usize..24).prop_map(Action::Issue),
        (0usize..8).prop_map(Action::Complete),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn pni_invariants_hold(
        actions in prop::collection::vec(action_strategy(), 1..200),
        mode_hashed in any::<bool>(),
    ) {
        let mode = if mode_hashed {
            TranslationMode::Hashed
        } else {
            TranslationMode::Interleaved
        };
        let hasher = AddressHasher::new(8, mode);
        let mut pni = Pni::new(PeId(5), hasher);
        let mut in_flight: Vec<Message> = Vec::new();
        let mut seen_ids = HashSet::new();
        let mut busy_locations: HashMap<usize, ()> = HashMap::new();

        for (t, action) in actions.iter().enumerate() {
            match action {
                Action::Issue(vaddr) => {
                    let result = pni.issue(MsgKind::Load, *vaddr, 0, t as u64);
                    if busy_locations.contains_key(vaddr) {
                        prop_assert_eq!(
                            result.clone().err(),
                            Some(PniError::LocationBusy),
                            "issue to busy location must be refused"
                        );
                    } else {
                        let msg = result.expect("free location must issue");
                        prop_assert!(seen_ids.insert(msg.id), "duplicate id");
                        prop_assert_eq!(msg.addr, pni.translate(*vaddr));
                        prop_assert_eq!(msg.src, PeId(5));
                        busy_locations.insert(*vaddr, ());
                        in_flight.push(msg);
                    }
                }
                Action::Complete(idx) => {
                    if in_flight.is_empty() {
                        continue;
                    }
                    let msg = in_flight.remove(idx % in_flight.len());
                    let reply = Reply::to_request(&msg, 42);
                    prop_assert!(pni.complete(&reply), "known reply must match");
                    prop_assert!(!pni.complete(&reply), "double complete rejected");
                    // Find which vaddr this was: reverse via translation.
                    let vaddr = (0usize..24)
                        .find(|v| pni.translate(*v) == msg.addr)
                        .expect("small address space");
                    busy_locations.remove(&vaddr);
                }
            }
            prop_assert_eq!(pni.outstanding(), in_flight.len());
            for v in 0usize..24 {
                prop_assert_eq!(
                    pni.is_location_busy(v),
                    busy_locations.contains_key(&v),
                    "location {} busy-tracking diverged",
                    v
                );
            }
        }
        // Drain everything; the PNI must end clean.
        for msg in in_flight.drain(..) {
            let reply = Reply::to_request(&msg, 0);
            prop_assert!(pni.complete(&reply));
        }
        prop_assert_eq!(pni.outstanding(), 0);
    }

    /// Translation is injective across the whole tested address range for
    /// both modes (no two virtual words alias one physical word).
    #[test]
    fn translation_injective(mode_hashed in any::<bool>(), span in 1usize..5000) {
        let mode = if mode_hashed {
            TranslationMode::Hashed
        } else {
            TranslationMode::Interleaved
        };
        let hasher = AddressHasher::new(16, mode);
        let mut seen = HashSet::new();
        for v in 0..span {
            prop_assert!(seen.insert(hasher.translate(v)), "collision at {}", v);
        }
    }
}

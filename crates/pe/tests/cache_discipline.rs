//! The §3.4 software cache-coherence discipline, acted out.
//!
//! "Consider a variable V that is declared in task T and is shared with
//! T's subtasks. Prior to spawning these subtasks, T may treat V as
//! private (and thus eligible to be cached and pipelined) providing that
//! V is flushed, released, and marked shared immediately before the
//! subtasks are spawned. … Once the subtasks have completed T may again
//! consider V as private and eligible for caching. Coherence is
//! maintained since V is cached only during periods of exclusive use by
//! one task."

use std::collections::HashMap;
use ultra_pe::cache::{Cache, CacheConfig, ReadOutcome, WriteOutcome};
use ultra_sim::Value;

/// A toy central memory plus helpers to move whole lines.
struct CentralMemory {
    words: HashMap<usize, Value>,
    line_words: usize,
    writebacks: usize,
    fetches: usize,
}

impl CentralMemory {
    fn new(line_words: usize) -> Self {
        Self {
            words: HashMap::new(),
            line_words,
            writebacks: 0,
            fetches: 0,
        }
    }

    fn fetch_line(&mut self, base: usize) -> Vec<Value> {
        self.fetches += 1;
        (0..self.line_words)
            .map(|i| self.words.get(&(base + i)).copied().unwrap_or(0))
            .collect()
    }

    fn write_line(&mut self, base: usize, data: &[Value]) {
        self.writebacks += 1;
        for (i, &v) in data.iter().enumerate() {
            self.words.insert(base + i, v);
        }
    }

    fn read_word(&self, addr: usize) -> Value {
        self.words.get(&addr).copied().unwrap_or(0)
    }

    fn write_word(&mut self, addr: usize, v: Value) {
        self.words.insert(addr, v);
    }
}

fn cached_read(cache: &mut Cache, mem: &mut CentralMemory, addr: usize) -> Value {
    loop {
        match cache.read(addr) {
            ReadOutcome::Hit(v) => return v,
            ReadOutcome::Miss {
                fetch_base,
                writeback,
            } => {
                if let Some((base, data)) = writeback {
                    mem.write_line(base, &data);
                }
                let line = mem.fetch_line(fetch_base);
                cache.fill(fetch_base, line);
            }
        }
    }
}

fn cached_write(cache: &mut Cache, mem: &mut CentralMemory, addr: usize, v: Value) {
    loop {
        match cache.write(addr, v) {
            WriteOutcome::Hit => return,
            WriteOutcome::Miss {
                fetch_base,
                writeback,
            } => {
                if let Some((base, data)) = writeback {
                    mem.write_line(base, &data);
                }
                let line = mem.fetch_line(fetch_base);
                cache.fill(fetch_base, line);
            }
        }
    }
}

const V: usize = 40; // the shared variable's address (line-aligned region)

#[test]
fn flush_release_spawn_protocol_maintains_coherence() {
    let cfg = CacheConfig {
        sets: 8,
        ways: 2,
        line_words: 4,
    };
    let mut mem = CentralMemory::new(4);
    let mut t_cache = Cache::new(cfg);

    // Task T treats V as private: cached, written back lazily.
    cached_write(&mut t_cache, &mut mem, V, 7);
    cached_write(&mut t_cache, &mut mem, V, 8);
    assert_eq!(
        mem.read_word(V),
        0,
        "write-back: central memory still stale"
    );

    // Spawn protocol: flush, release, mark shared.
    for (base, data) in t_cache.flush(V, V + 4) {
        mem.write_line(base, &data);
    }
    t_cache.release(V, V + 4);
    assert_eq!(mem.read_word(V), 8, "flush published T's value");

    // Subtasks reference V uncached (shared read-write).
    assert_eq!(mem.read_word(V), 8, "subtask sees the flushed value");
    mem.write_word(V, 100); // subtask updates V through the network

    // Subtasks complete; T treats V as private again. Because V was
    // released, the next access refetches — no stale line.
    let seen = cached_read(&mut t_cache, &mut mem, V);
    assert_eq!(seen, 100, "T observes the subtask's update");
}

#[test]
fn skipping_the_flush_loses_the_update() {
    // Negative control: without the flush the subtask reads stale data —
    // exactly the hazard §3.4's protocol exists to prevent.
    let cfg = CacheConfig {
        sets: 8,
        ways: 2,
        line_words: 4,
    };
    let mut mem = CentralMemory::new(4);
    let mut t_cache = Cache::new(cfg);
    cached_write(&mut t_cache, &mut mem, V, 7);
    // (no flush)
    assert_eq!(
        mem.read_word(V),
        0,
        "subtask would read 0 instead of 7: incoherent"
    );
}

#[test]
fn skipping_the_release_reads_stale_data() {
    // Negative control: flushed but not released — T's next read hits the
    // (clean) cached line and misses the subtask's update.
    let cfg = CacheConfig {
        sets: 8,
        ways: 2,
        line_words: 4,
    };
    let mut mem = CentralMemory::new(4);
    let mut t_cache = Cache::new(cfg);
    cached_write(&mut t_cache, &mut mem, V, 7);
    for (base, data) in t_cache.flush(V, V + 4) {
        mem.write_line(base, &data);
    }
    // (no release)
    mem.write_word(V, 100); // subtask update
    let seen = cached_read(&mut t_cache, &mut mem, V);
    assert_eq!(seen, 7, "stale hit: this is why release is mandatory");
}

#[test]
fn release_saves_writeback_traffic() {
    // §3.4: "the release operation reduces network traffic by lowering
    // the quantity of data written back to central memory during a task
    // switch." Scope-exit locals are released, not flushed.
    let cfg = CacheConfig {
        sets: 4,
        ways: 1,
        line_words: 4,
    };
    let scratch_base = 80;
    // Without release: dirty scratch lines get written back on eviction.
    let mut mem_a = CentralMemory::new(4);
    let mut cache_a = Cache::new(cfg);
    for i in 0..4 {
        cached_write(&mut cache_a, &mut mem_a, scratch_base + i, 1);
    }
    // Evict by touching the conflicting set (same set index, different tag).
    let conflicting = scratch_base + 4 * 4;
    let _ = cached_read(&mut cache_a, &mut mem_a, conflicting);
    assert_eq!(mem_a.writebacks, 1, "dirty eviction wrote back");

    // With release at block exit: no write-back at all.
    let mut mem_b = CentralMemory::new(4);
    let mut cache_b = Cache::new(cfg);
    for i in 0..4 {
        cached_write(&mut cache_b, &mut mem_b, scratch_base + i, 1);
    }
    cache_b.release(scratch_base, scratch_base + 4);
    let _ = cached_read(&mut cache_b, &mut mem_b, conflicting);
    assert_eq!(mem_b.writebacks, 0, "released lines vanish silently");
}

#[test]
fn cache_captures_most_private_references() {
    // §3.2: "a large cache can capture up to 95% of the references to
    // cacheable variables." A looping working set smaller than the cache
    // must hit on all but cold misses.
    let cfg = CacheConfig::default(); // 4 Ki-words
    let mut mem = CentralMemory::new(cfg.line_words);
    let mut cache = Cache::new(cfg);
    let working_set = 512;
    for round in 0..20 {
        for addr in 0..working_set {
            let v = cached_read(&mut cache, &mut mem, addr);
            if round == 0 {
                assert_eq!(v, 0);
            }
        }
    }
    let s = cache.stats();
    let hit_rate = s.hits.get() as f64 / (s.hits.get() + s.misses.get()) as f64;
    assert!(
        hit_rate > 0.95,
        "hit rate {hit_rate:.3} must exceed the paper's 95% figure"
    );
}

//! Processing-element-side components of the Ultracomputer (paper §3.2,
//! §3.4, §3.5).
//!
//! * [`cache`] — the PE-local cache (§3.2): write-back with the two
//!   software-visible commands of §3.4, **release** (drop without
//!   write-back) and **flush** (force write-back), which together let tasks
//!   cache shared read-write data during periods of exclusive or read-only
//!   use.
//! * [`pni`] — the processor-network interface (§3.4): virtual→physical
//!   translation (with the §3.1.4 hashing), request id management, and the
//!   pipelining policy — at most one outstanding reference per memory
//!   location ("the PNI is to prohibit a PE from having more than one
//!   outstanding reference to the same memory location", §3.3).
//! * [`traffic`] — open-loop request generators (uniform and hot-spot)
//!   driving the §4 network-performance experiments.
//! * [`stats`] — per-PE instruction/idle accounting matching Table 1's
//!   columns.

pub mod cache;
pub mod pni;
pub mod stats;
pub mod traffic;

pub use cache::{Cache, CacheConfig, ReadOutcome, WriteOutcome};
pub use pni::{Pni, PniError};
pub use stats::PeStats;
pub use traffic::{HotspotTraffic, RequestSpec, TrafficPattern, UniformTraffic};

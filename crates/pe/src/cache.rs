//! The PE-local cache (§3.2) with `release` and `flush` (§3.4).
//!
//! The paper chooses a conventional hardware-managed cache over a separately
//! addressable local memory: "Experience with uniprocessor systems shows
//! that a large cache can capture up to 95% of the references to cacheable
//! variables." A **write-back** update policy is chosen "to reduce network
//! traffic": dirty words are written to central memory only on eviction —
//! or on an explicit `flush`.
//!
//! Beyond the invisible load/store behaviour, the paper's cache exposes two
//! commands (§3.4):
//!
//! * **release** — "marks a cache entry as available without performing a
//!   central memory update", freeing space for virtual addresses that will
//!   no longer be referenced and avoiding write-back traffic;
//! * **flush** — "enables the PE to force a write-back of cached values",
//!   needed before task switches and before spawning subtasks that will
//!   share formerly-private data.
//!
//! The model is a set-associative, true-LRU, word-granularity write-back
//! cache addressed by virtual word address.

use std::collections::HashMap;

use ultra_sim::{Counter, Value};

/// Geometry of a [`Cache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Words per line (power of two).
    pub line_words: usize,
}

impl Default for CacheConfig {
    /// 256 sets × 4 ways × 4-word lines = 4 Ki-words.
    fn default() -> Self {
        Self {
            sets: 256,
            ways: 4,
            line_words: 4,
        }
    }
}

/// One cache line.
#[derive(Debug, Clone)]
struct Line {
    /// Line-aligned base virtual address.
    base: usize,
    data: Vec<Value>,
    dirty: bool,
    /// LRU stamp: larger = more recently used.
    lru: u64,
}

/// Result of a read probe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadOutcome {
    /// The word was cached.
    Hit(Value),
    /// The line must be fetched from central memory; if a dirty line was
    /// evicted to make room, it must be written back first.
    Miss {
        /// Line-aligned base address to fetch.
        fetch_base: usize,
        /// Evicted dirty line (base, words), if any.
        writeback: Option<(usize, Vec<Value>)>,
    },
}

/// Result of a write probe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteOutcome {
    /// The word was cached and is now dirty.
    Hit,
    /// Write-allocate: fetch the line, then retry; same eviction contract
    /// as [`ReadOutcome::Miss`].
    Miss {
        /// Line-aligned base address to fetch.
        fetch_base: usize,
        /// Evicted dirty line (base, words), if any.
        writeback: Option<(usize, Vec<Value>)>,
    },
}

/// Cache instrumentation.
#[derive(Debug, Clone, Default)]
pub struct CacheStats {
    /// Read/write probes that hit.
    pub hits: Counter,
    /// Read/write probes that missed.
    pub misses: Counter,
    /// Dirty lines written back on eviction or flush.
    pub writebacks: Counter,
    /// Lines dropped by `release` (write-backs avoided for dirty ones).
    pub released: Counter,
}

/// A write-back, set-associative PE cache with `release` and `flush`.
///
/// # Example
///
/// ```
/// use ultra_pe::cache::{Cache, CacheConfig, ReadOutcome};
///
/// let mut cache = Cache::new(CacheConfig::default());
/// match cache.read(100) {
///     ReadOutcome::Miss { fetch_base, writeback } => {
///         assert!(writeback.is_none());
///         cache.fill(fetch_base, vec![7; 4]); // fetched from central memory
///     }
///     ReadOutcome::Hit(_) => unreachable!("cold cache"),
/// }
/// assert_eq!(cache.read(100), ReadOutcome::Hit(7));
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    /// `sets[s]` holds up to `ways` lines.
    sets: Vec<Vec<Line>>,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics unless sets and line words are powers of two and ways ≥ 1.
    #[must_use]
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.sets.is_power_of_two(), "sets must be a power of two");
        assert!(
            cfg.line_words.is_power_of_two(),
            "line words must be a power of two"
        );
        assert!(cfg.ways >= 1, "need at least one way");
        Self {
            sets: vec![Vec::new(); cfg.sets],
            cfg,
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    #[must_use]
    pub fn cfg(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn line_base(&self, addr: usize) -> usize {
        addr & !(self.cfg.line_words - 1)
    }

    fn set_index(&self, base: usize) -> usize {
        (base / self.cfg.line_words) & (self.cfg.sets - 1)
    }

    fn touch(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Probes for a read of virtual word `addr`.
    pub fn read(&mut self, addr: usize) -> ReadOutcome {
        let base = self.line_base(addr);
        let set = self.set_index(base);
        let stamp = self.touch();
        if let Some(line) = self.sets[set].iter_mut().find(|l| l.base == base) {
            line.lru = stamp;
            self.stats.hits.incr();
            return ReadOutcome::Hit(line.data[addr - base]);
        }
        self.stats.misses.incr();
        let writeback = self.make_room(set);
        ReadOutcome::Miss {
            fetch_base: base,
            writeback,
        }
    }

    /// Probes for a write of `value` to virtual word `addr` (write-back,
    /// write-allocate).
    pub fn write(&mut self, addr: usize, value: Value) -> WriteOutcome {
        let base = self.line_base(addr);
        let set = self.set_index(base);
        let stamp = self.touch();
        if let Some(line) = self.sets[set].iter_mut().find(|l| l.base == base) {
            line.lru = stamp;
            line.data[addr - base] = value;
            line.dirty = true;
            self.stats.hits.incr();
            return WriteOutcome::Hit;
        }
        self.stats.misses.incr();
        let writeback = self.make_room(set);
        WriteOutcome::Miss {
            fetch_base: base,
            writeback,
        }
    }

    /// Installs a line fetched from central memory. The caller then retries
    /// the access that missed.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly one line, if `base` is unaligned, or
    /// if the set has no room (the miss that prompted this fill made room).
    pub fn fill(&mut self, base: usize, data: Vec<Value>) {
        assert_eq!(data.len(), self.cfg.line_words, "fill must be one line");
        assert_eq!(base % self.cfg.line_words, 0, "unaligned fill");
        let set = self.set_index(base);
        assert!(
            self.sets[set].len() < self.cfg.ways,
            "no room: fill must follow a miss"
        );
        let stamp = self.touch();
        self.sets[set].push(Line {
            base,
            data,
            dirty: false,
            lru: stamp,
        });
    }

    /// Evicts the LRU line of `set` if it is full, returning its write-back
    /// obligation.
    fn make_room(&mut self, set: usize) -> Option<(usize, Vec<Value>)> {
        if self.sets[set].len() < self.cfg.ways {
            return None;
        }
        let victim = self.sets[set]
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| l.lru)
            .map(|(i, _)| i)
            .expect("set is full");
        let line = self.sets[set].swap_remove(victim);
        if line.dirty {
            self.stats.writebacks.incr();
            Some((line.base, line.data))
        } else {
            None
        }
    }

    /// §3.4 **release**: drops every cached line whose base lies in
    /// `[from, to)` *without* write-back. Returns how many lines were
    /// dropped.
    pub fn release(&mut self, from: usize, to: usize) -> usize {
        let mut dropped = 0;
        for set in &mut self.sets {
            set.retain(|l| {
                let gone = l.base >= from && l.base < to;
                dropped += usize::from(gone);
                !gone
            });
        }
        self.stats.released.add(dropped as u64);
        dropped
    }

    /// §3.4 **flush**: writes back every dirty line whose base lies in
    /// `[from, to)` (lines stay resident, now clean). Returns the
    /// write-back list.
    pub fn flush(&mut self, from: usize, to: usize) -> Vec<(usize, Vec<Value>)> {
        let mut out = Vec::new();
        for set in &mut self.sets {
            for line in set.iter_mut() {
                if line.dirty && line.base >= from && line.base < to {
                    line.dirty = false;
                    out.push((line.base, line.data.clone()));
                }
            }
        }
        self.stats.writebacks.add(out.len() as u64);
        out
    }

    /// Flushes the entire cache (§3.4: flush "can be performed … for the
    /// entire cache", e.g. at a task switch).
    pub fn flush_all(&mut self) -> Vec<(usize, Vec<Value>)> {
        self.flush(0, usize::MAX)
    }

    /// Snapshot of resident lines as `addr -> value` (testing aid).
    #[must_use]
    pub fn resident_words(&self) -> HashMap<usize, Value> {
        let mut out = HashMap::new();
        for set in &self.sets {
            for line in set {
                for (i, &v) in line.data.iter().enumerate() {
                    out.insert(line.base + i, v);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways x 2-word lines: easy to force evictions.
        Cache::new(CacheConfig {
            sets: 2,
            ways: 2,
            line_words: 2,
        })
    }

    fn fill_for_read(c: &mut Cache, addr: usize, val: Value) {
        match c.read(addr) {
            ReadOutcome::Miss { fetch_base, .. } => {
                c.fill(fetch_base, vec![val; 2]);
            }
            ReadOutcome::Hit(_) => panic!("expected a miss"),
        }
    }

    #[test]
    fn cold_read_misses_then_hits() {
        let mut c = tiny();
        fill_for_read(&mut c, 4, 9);
        assert_eq!(c.read(4), ReadOutcome::Hit(9));
        assert_eq!(c.read(5), ReadOutcome::Hit(9), "same line");
        assert_eq!(c.stats().hits.get(), 2);
        assert_eq!(c.stats().misses.get(), 1);
    }

    #[test]
    fn write_back_only_on_eviction() {
        let mut c = tiny();
        // Lines with base 0, 4, 8 all map to set 0 (line_words=2, sets=2:
        // set = (base/2) & 1 -> 0, 0, 0 for bases 0, 4, 8).
        fill_for_read(&mut c, 0, 1);
        match c.write(0, 42) {
            WriteOutcome::Hit => {}
            WriteOutcome::Miss { .. } => panic!("resident line"),
        }
        fill_for_read(&mut c, 4, 2);
        // Set 0 now full; next miss in set 0 must evict LRU (base 0, dirty).
        match c.read(8) {
            ReadOutcome::Miss { writeback, .. } => {
                let (base, data) = writeback.expect("dirty LRU line written back");
                assert_eq!(base, 0);
                assert_eq!(data, vec![42, 1]);
            }
            ReadOutcome::Hit(_) => panic!("must miss"),
        }
        assert_eq!(c.stats().writebacks.get(), 1);
    }

    #[test]
    fn clean_eviction_produces_no_writeback() {
        let mut c = tiny();
        fill_for_read(&mut c, 0, 1);
        fill_for_read(&mut c, 4, 2);
        match c.read(8) {
            ReadOutcome::Miss { writeback, .. } => assert!(writeback.is_none()),
            ReadOutcome::Hit(_) => panic!(),
        }
    }

    #[test]
    fn lru_is_true_lru() {
        let mut c = tiny();
        fill_for_read(&mut c, 0, 1);
        fill_for_read(&mut c, 4, 2);
        // Touch base 0 so base 4 becomes LRU.
        let _ = c.read(0);
        match c.read(8) {
            ReadOutcome::Miss { .. } => {
                c.fill(8, vec![3; 2]);
            }
            ReadOutcome::Hit(_) => panic!(),
        }
        assert_eq!(
            c.read(0),
            ReadOutcome::Hit(1),
            "recently used line survives"
        );
        assert!(matches!(c.read(4), ReadOutcome::Miss { .. }), "LRU evicted");
    }

    #[test]
    fn release_discards_dirty_data_without_writeback() {
        let mut c = tiny();
        fill_for_read(&mut c, 0, 1);
        let _ = c.write(0, 99);
        let dropped = c.release(0, 2);
        assert_eq!(dropped, 1);
        assert_eq!(c.stats().writebacks.get(), 0, "release avoids write-back");
        assert!(matches!(c.read(0), ReadOutcome::Miss { .. }));
    }

    #[test]
    fn flush_writes_back_and_keeps_lines_clean() {
        let mut c = tiny();
        fill_for_read(&mut c, 0, 1);
        let _ = c.write(1, 7);
        let wb = c.flush_all();
        assert_eq!(wb, vec![(0, vec![1, 7])]);
        // Still resident, now clean: evicting it later costs nothing.
        assert_eq!(c.read(1), ReadOutcome::Hit(7));
        assert!(c.flush_all().is_empty(), "already clean");
    }

    #[test]
    fn flush_range_is_selective() {
        let mut c = tiny();
        fill_for_read(&mut c, 0, 1);
        fill_for_read(&mut c, 2, 2);
        let _ = c.write(0, 10);
        let _ = c.write(2, 20);
        let wb = c.flush(0, 2);
        assert_eq!(wb.len(), 1);
        assert_eq!(wb[0].0, 0);
    }

    #[test]
    fn write_allocate_on_miss() {
        let mut c = tiny();
        match c.write(6, 5) {
            WriteOutcome::Miss { fetch_base, .. } => {
                assert_eq!(fetch_base, 6);
                c.fill(6, vec![0, 0]);
            }
            WriteOutcome::Hit => panic!("cold cache"),
        }
        assert_eq!(c.write(6, 5), WriteOutcome::Hit);
        assert_eq!(c.read(6), ReadOutcome::Hit(5));
    }

    #[test]
    fn resident_words_snapshot() {
        let mut c = tiny();
        fill_for_read(&mut c, 0, 3);
        let words = c.resident_words();
        assert_eq!(words.get(&0), Some(&3));
        assert_eq!(words.get(&1), Some(&3));
        assert_eq!(words.len(), 2);
    }
}

//! Open-loop traffic generators for the §4 network experiments.
//!
//! The analytic model of §4.1 assumes "requests are generated at each PE by
//! independent identically distributed time-invariant random processes" and
//! "MMs are equally likely to be referenced" — that is exactly
//! [`UniformTraffic`]: each cycle, each PE emits a request with probability
//! `p`, directed at a uniformly random MM.
//!
//! [`HotspotTraffic`] adds a tunable fraction of requests aimed at one
//! shared word — the situation combining exists to survive (experiment E6).

use ultra_net::message::{MsgKind, PhiOp};
use ultra_sim::{MemAddr, MmId, PeId, Rng, SplitMix64, Value};

/// One request a generator wants a PE to issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestSpec {
    /// Function indicator.
    pub kind: MsgKind,
    /// Destination word.
    pub addr: MemAddr,
    /// Store datum / fetch operand.
    pub value: Value,
}

/// A per-PE stochastic request source.
pub trait TrafficPattern {
    /// Returns the request PE `pe` should issue this cycle, if any.
    fn generate(&mut self, pe: PeId) -> Option<RequestSpec>;

    /// The offered load in messages per PE per cycle (the analytic `p`).
    fn intensity(&self) -> f64;
}

/// Bernoulli(p) arrivals, uniform destination, configurable mix of loads
/// and stores.
///
/// # Example
///
/// ```
/// use ultra_pe::traffic::{TrafficPattern, UniformTraffic};
/// use ultra_sim::PeId;
///
/// let mut t = UniformTraffic::new(16, 0.25, 0.5, 7);
/// let mut emitted = 0;
/// for _ in 0..1000 {
///     if t.generate(PeId(0)).is_some() {
///         emitted += 1;
///     }
/// }
/// assert!(emitted > 150 && emitted < 350, "roughly p = 0.25");
/// ```
#[derive(Debug, Clone)]
pub struct UniformTraffic {
    n_mms: usize,
    p: f64,
    load_fraction: f64,
    rng: SplitMix64,
}

impl UniformTraffic {
    /// Creates a generator over `n_mms` modules with per-cycle emission
    /// probability `p`; a `load_fraction` of requests are loads, the rest
    /// stores.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p <= 1`, `0 <= load_fraction <= 1`, and
    /// `n_mms > 0`.
    #[must_use]
    pub fn new(n_mms: usize, p: f64, load_fraction: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        assert!(
            (0.0..=1.0).contains(&load_fraction),
            "load_fraction must be a probability"
        );
        assert!(n_mms > 0, "need at least one MM");
        Self {
            n_mms,
            p,
            load_fraction,
            rng: SplitMix64::new(seed),
        }
    }
}

impl TrafficPattern for UniformTraffic {
    fn generate(&mut self, pe: PeId) -> Option<RequestSpec> {
        if !self.rng.chance(self.p) {
            return None;
        }
        let mm = MmId(self.rng.below(self.n_mms));
        let offset = self.rng.below(1024);
        let kind = if self.rng.chance(self.load_fraction) {
            MsgKind::Load
        } else {
            MsgKind::Store
        };
        Some(RequestSpec {
            kind,
            addr: MemAddr::new(mm, offset),
            value: pe.0 as Value,
        })
    }

    fn intensity(&self) -> f64 {
        self.p
    }
}

/// Uniform background traffic plus a `hot_fraction` of fetch-and-adds aimed
/// at one word.
#[derive(Debug, Clone)]
pub struct HotspotTraffic {
    uniform: UniformTraffic,
    hot_fraction: f64,
    hot_addr: MemAddr,
    rng: SplitMix64,
}

impl HotspotTraffic {
    /// Creates a generator in which each emitted request targets
    /// `hot_addr` with a fetch-and-add with probability `hot_fraction`,
    /// otherwise behaves like [`UniformTraffic`].
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= hot_fraction <= 1` (and see
    /// [`UniformTraffic::new`]).
    #[must_use]
    pub fn new(n_mms: usize, p: f64, hot_fraction: f64, hot_addr: MemAddr, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&hot_fraction),
            "hot_fraction must be a probability"
        );
        Self {
            uniform: UniformTraffic::new(n_mms, p, 1.0, seed),
            hot_fraction,
            hot_addr,
            rng: SplitMix64::new(seed ^ 0xdead_beef),
        }
    }

    /// The shared hot word.
    #[must_use]
    pub fn hot_addr(&self) -> MemAddr {
        self.hot_addr
    }
}

impl TrafficPattern for HotspotTraffic {
    fn generate(&mut self, pe: PeId) -> Option<RequestSpec> {
        let base = self.uniform.generate(pe)?;
        if self.rng.chance(self.hot_fraction) {
            Some(RequestSpec {
                kind: MsgKind::FetchPhi(PhiOp::Add),
                addr: self.hot_addr,
                value: 1,
            })
        } else {
            Some(base)
        }
    }

    fn intensity(&self) -> f64 {
        self.uniform.intensity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_intensity_calibrated() {
        let mut t = UniformTraffic::new(64, 0.1, 0.5, 42);
        let hits = (0..100_000)
            .filter(|_| t.generate(PeId(1)).is_some())
            .count();
        assert!((8_000..12_000).contains(&hits), "hits = {hits}");
        assert!((t.intensity() - 0.1).abs() < f64::EPSILON);
    }

    #[test]
    fn uniform_spreads_over_all_mms() {
        let mut t = UniformTraffic::new(16, 1.0, 0.5, 3);
        let mut seen = [false; 16];
        for _ in 0..1000 {
            let r = t.generate(PeId(0)).unwrap();
            seen[r.addr.mm.0] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn load_fraction_respected() {
        let mut t = UniformTraffic::new(16, 1.0, 1.0, 5);
        for _ in 0..100 {
            assert_eq!(t.generate(PeId(0)).unwrap().kind, MsgKind::Load);
        }
        let mut t = UniformTraffic::new(16, 1.0, 0.0, 5);
        for _ in 0..100 {
            assert_eq!(t.generate(PeId(0)).unwrap().kind, MsgKind::Store);
        }
    }

    #[test]
    fn hotspot_fraction_targets_hot_word() {
        let hot = MemAddr::new(MmId(3), 0);
        let mut t = HotspotTraffic::new(16, 1.0, 0.25, hot, 9);
        let mut hot_hits = 0;
        for _ in 0..10_000 {
            let r = t.generate(PeId(0)).unwrap();
            if r.addr == hot {
                assert_eq!(r.kind, MsgKind::FetchPhi(PhiOp::Add));
                hot_hits += 1;
            }
        }
        assert!((2_000..3_000).contains(&hot_hits), "hot_hits = {hot_hits}");
    }

    #[test]
    fn zero_hot_fraction_degenerates_to_uniform() {
        let hot = MemAddr::new(MmId(3), 0);
        let mut t = HotspotTraffic::new(16, 1.0, 0.0, hot, 9);
        for _ in 0..1000 {
            let r = t.generate(PeId(0)).unwrap();
            assert_eq!(r.kind, MsgKind::Load);
        }
    }
}

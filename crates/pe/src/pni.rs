//! The processor-network interface (§3.4).
//!
//! "The PNI performs four functions: virtual to physical address
//! translation, assembly/disassembly of memory requests, enforcement of the
//! network pipeline policy, and cache management." Assembly/disassembly is
//! absorbed by the packet-length model in `ultra-net`; cache management
//! lives in [`crate::cache`]; this module implements translation and the
//! pipeline policy:
//!
//! * requests to **distinct** locations may be pipelined (issued before
//!   earlier ones are acknowledged);
//! * at most **one outstanding reference per memory location** — "the PNI
//!   is to prohibit a PE from having more than one outstanding reference to
//!   the same memory location" (§3.3), which is what lets wait-buffer keys
//!   identify messages uniquely.

use std::collections::HashMap;

use ultra_mem::AddressHasher;
use ultra_net::message::{Message, MsgId, MsgKind, Reply};
use ultra_sim::{Counter, Cycle, MemAddr, PeId, Value};

/// Why the PNI refused to issue a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PniError {
    /// A request to the same physical location is already outstanding;
    /// §3.3's uniqueness rule forbids a second.
    LocationBusy,
}

impl std::fmt::Display for PniError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PniError::LocationBusy => {
                write!(f, "a reference to this location is already outstanding")
            }
        }
    }
}

impl std::error::Error for PniError {}

/// Per-PE network interface state.
///
/// # Example
///
/// ```
/// use ultra_mem::{AddressHasher, TranslationMode};
/// use ultra_net::message::MsgKind;
/// use ultra_pe::pni::Pni;
/// use ultra_sim::PeId;
///
/// let hasher = AddressHasher::new(8, TranslationMode::Hashed);
/// let mut pni = Pni::new(PeId(2), hasher);
/// let msg = pni.issue(MsgKind::Load, 100, 0, 0).expect("nothing outstanding");
/// assert_eq!(pni.outstanding(), 1);
/// // Re-referencing the same virtual word before the reply is forbidden:
/// assert!(pni.issue(MsgKind::Load, 100, 0, 1).is_err());
/// # let _ = msg;
/// ```
#[derive(Debug, Clone)]
pub struct Pni {
    pe: PeId,
    hasher: AddressHasher,
    /// Physical location → outstanding request id.
    by_location: HashMap<MemAddr, MsgId>,
    /// Outstanding id → physical location (for completion).
    inflight: HashMap<MsgId, MemAddr>,
    next_id: u64,
    stats: PniStats,
}

/// PNI instrumentation.
#[derive(Debug, Clone, Default)]
pub struct PniStats {
    /// Requests issued.
    pub issued: Counter,
    /// Replies matched to outstanding requests.
    pub completed: Counter,
    /// Issue attempts refused by the one-per-location rule.
    pub location_conflicts: Counter,
    /// Highest number of simultaneously outstanding requests.
    pub max_outstanding: usize,
}

impl Pni {
    /// Creates the interface for `pe`. Request ids are drawn from a
    /// PE-disjoint space so that ids are unique machine-wide.
    #[must_use]
    pub fn new(pe: PeId, hasher: AddressHasher) -> Self {
        Self {
            pe,
            hasher,
            by_location: HashMap::new(),
            inflight: HashMap::new(),
            // Top 20 bits reserved for the PE number: unique across 2^20 PEs
            // and 2^44 requests each.
            next_id: ((pe.0 as u64) << 44) + 1,
            stats: PniStats::default(),
        }
    }

    /// The PE this interface serves.
    #[must_use]
    pub fn pe(&self) -> PeId {
        self.pe
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &PniStats {
        &self.stats
    }

    /// Virtual→physical translation (§3.1.4 hashing included).
    #[must_use]
    pub fn translate(&self, vaddr: usize) -> MemAddr {
        self.hasher.translate(vaddr)
    }

    /// Builds a network request for virtual word `vaddr`, enforcing the
    /// pipeline policy.
    ///
    /// # Errors
    ///
    /// [`PniError::LocationBusy`] if a reference to the same location is
    /// already outstanding.
    pub fn issue(
        &mut self,
        kind: MsgKind,
        vaddr: usize,
        value: Value,
        now: Cycle,
    ) -> Result<Message, PniError> {
        let addr = self.translate(vaddr);
        self.issue_physical(kind, addr, value, now)
    }

    /// Like [`Pni::issue`] but with a pre-translated physical address.
    ///
    /// # Errors
    ///
    /// [`PniError::LocationBusy`] if a reference to the same location is
    /// already outstanding.
    pub fn issue_physical(
        &mut self,
        kind: MsgKind,
        addr: MemAddr,
        value: Value,
        now: Cycle,
    ) -> Result<Message, PniError> {
        if self.by_location.contains_key(&addr) {
            self.stats.location_conflicts.incr();
            return Err(PniError::LocationBusy);
        }
        let id = MsgId(self.next_id);
        self.next_id += 1;
        self.by_location.insert(addr, id);
        self.inflight.insert(id, addr);
        self.stats.issued.incr();
        self.stats.max_outstanding = self.stats.max_outstanding.max(self.inflight.len());
        Ok(Message::request(id, kind, addr, value, self.pe, now))
    }

    /// Records the arrival of `reply`, freeing its location for new
    /// references. Returns `true` if the reply matched an outstanding
    /// request of this PE.
    pub fn complete(&mut self, reply: &Reply) -> bool {
        match self.inflight.remove(&reply.id) {
            Some(addr) => {
                let removed = self.by_location.remove(&addr);
                debug_assert_eq!(removed, Some(reply.id));
                self.stats.completed.incr();
                true
            }
            None => false,
        }
    }

    /// Number of requests awaiting replies.
    #[must_use]
    pub fn outstanding(&self) -> usize {
        self.inflight.len()
    }

    /// Whether a reference to virtual word `vaddr` is outstanding.
    #[must_use]
    pub fn is_location_busy(&self, vaddr: usize) -> bool {
        self.by_location.contains_key(&self.translate(vaddr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ultra_mem::TranslationMode;
    use ultra_net::message::ReplyKind;

    fn pni() -> Pni {
        Pni::new(PeId(3), AddressHasher::new(8, TranslationMode::Interleaved))
    }

    #[test]
    fn issues_and_completes() {
        let mut p = pni();
        let m = p.issue(MsgKind::Load, 42, 0, 0).unwrap();
        assert_eq!(m.src, PeId(3));
        assert_eq!(m.addr, p.translate(42));
        assert_eq!(p.outstanding(), 1);
        let r = Reply::to_request(&m, 5);
        assert!(p.complete(&r));
        assert_eq!(p.outstanding(), 0);
        assert!(!p.complete(&r), "double completion rejected");
    }

    #[test]
    fn one_outstanding_per_location() {
        let mut p = pni();
        let m = p.issue(MsgKind::fetch_add(), 42, 1, 0).unwrap();
        assert_eq!(
            p.issue(MsgKind::fetch_add(), 42, 1, 1),
            Err(PniError::LocationBusy)
        );
        assert!(p.is_location_busy(42));
        assert_eq!(p.stats().location_conflicts.get(), 1);
        // A different word in the same MM is fine (pipelining allowed).
        let _ = p.issue(MsgKind::Load, 42 + 8, 0, 1).unwrap();
        assert_eq!(p.outstanding(), 2);
        // After completion the location frees up.
        let r = Reply::to_request(&m, 0);
        p.complete(&r);
        assert!(p.issue(MsgKind::Load, 42, 0, 2).is_ok());
    }

    #[test]
    fn ids_unique_across_pes() {
        let hasher = AddressHasher::new(8, TranslationMode::Interleaved);
        let mut a = Pni::new(PeId(0), hasher);
        let mut b = Pni::new(PeId(1), hasher);
        let ma = a.issue(MsgKind::Load, 1, 0, 0).unwrap();
        let mb = b.issue(MsgKind::Load, 1, 0, 0).unwrap();
        assert_ne!(ma.id, mb.id);
    }

    #[test]
    fn foreign_reply_is_ignored() {
        let mut p = pni();
        let foreign = Reply {
            id: MsgId(999),
            dst: PeId(3),
            addr: MemAddr::new(ultra_sim::MmId(0), 0),
            value: 0,
            kind: ReplyKind::Ack,
            request_issued_at: 0,
            mm_injected_at: 0,
            amalgam: 0,
        };
        assert!(!p.complete(&foreign));
    }

    #[test]
    fn max_outstanding_tracked() {
        let mut p = pni();
        for i in 0..5 {
            let _ = p.issue(MsgKind::Load, i, 0, 0).unwrap();
        }
        assert_eq!(p.stats().max_outstanding, 5);
    }
}

//! The processor-network interface (§3.4).
//!
//! "The PNI performs four functions: virtual to physical address
//! translation, assembly/disassembly of memory requests, enforcement of the
//! network pipeline policy, and cache management." Assembly/disassembly is
//! absorbed by the packet-length model in `ultra-net`; cache management
//! lives in [`crate::cache`]; this module implements translation and the
//! pipeline policy:
//!
//! * requests to **distinct** locations may be pipelined (issued before
//!   earlier ones are acknowledged);
//! * at most **one outstanding reference per memory location** — "the PNI
//!   is to prohibit a PE from having more than one outstanding reference to
//!   the same memory location" (§3.3), which is what lets wait-buffer keys
//!   identify messages uniquely.
//!
//! # Retry protocol (fault recovery)
//!
//! When the machine runs under a fault plan, the PNI also implements the
//! recovery protocol: every issued request carries a deadline; an
//! unanswered request past its deadline is re-issued under the **same id**
//! (the id doubles as the sequence number) with an incremented attempt
//! counter and exponential backoff. Retried messages never combine in the
//! network, and the memory modules' dedup cache guarantees each sequence
//! number is applied at most once, so a retried fetch-and-add still gets
//! its §2.1 serialization-chain ticket exactly once. Disabled (the
//! default), none of this bookkeeping exists.

use std::collections::HashMap;

use ultra_faults::RetryPolicy;
use ultra_mem::AddressHasher;
use ultra_net::message::{Message, MsgId, MsgKind, Reply};
use ultra_sim::wire::{Wire, WireError, WireReader, WireWriter};
use ultra_sim::{Counter, Cycle, MemAddr, PeId, Value};

/// Why the PNI refused to issue a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PniError {
    /// A request to the same physical location is already outstanding;
    /// §3.3's uniqueness rule forbids a second.
    LocationBusy,
}

impl std::fmt::Display for PniError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PniError::LocationBusy => {
                write!(f, "a reference to this location is already outstanding")
            }
        }
    }
}

impl std::error::Error for PniError {}

/// Per-PE network interface state.
///
/// # Example
///
/// ```
/// use ultra_mem::{AddressHasher, TranslationMode};
/// use ultra_net::message::MsgKind;
/// use ultra_pe::pni::Pni;
/// use ultra_sim::PeId;
///
/// let hasher = AddressHasher::new(8, TranslationMode::Hashed);
/// let mut pni = Pni::new(PeId(2), hasher);
/// let msg = pni.issue(MsgKind::Load, 100, 0, 0).expect("nothing outstanding");
/// assert_eq!(pni.outstanding(), 1);
/// // Re-referencing the same virtual word before the reply is forbidden:
/// assert!(pni.issue(MsgKind::Load, 100, 0, 1).is_err());
/// # let _ = msg;
/// ```
#[derive(Debug, Clone)]
pub struct Pni {
    pe: PeId,
    hasher: AddressHasher,
    /// Physical location → outstanding request id.
    by_location: HashMap<MemAddr, MsgId>,
    /// Outstanding id → physical location (for completion).
    inflight: HashMap<MsgId, MemAddr>,
    next_id: u64,
    stats: PniStats,
    /// The recovery protocol, if enabled.
    retry: Option<RetryPolicy>,
    /// Everything needed to re-issue each outstanding request (empty when
    /// the retry protocol is disabled).
    pending: HashMap<MsgId, PendingRequest>,
    /// Reused between [`Pni::due_retries_into`] calls so the per-cycle
    /// timeout sweep allocates nothing in the common empty case.
    due_scratch: Vec<MsgId>,
}

/// Book-keeping for one outstanding request under the retry protocol.
#[derive(Debug, Clone)]
struct PendingRequest {
    kind: MsgKind,
    /// Virtual address, when known — lets a retry re-translate after the
    /// hasher re-hashes around a newly dead module.
    vaddr: Option<usize>,
    addr: MemAddr,
    value: Value,
    attempt: u32,
    deadline: Cycle,
}

/// PNI instrumentation.
#[derive(Debug, Clone, Default)]
pub struct PniStats {
    /// Requests issued.
    pub issued: Counter,
    /// Replies matched to outstanding requests.
    pub completed: Counter,
    /// Issue attempts refused by the one-per-location rule.
    pub location_conflicts: Counter,
    /// Highest number of simultaneously outstanding requests.
    pub max_outstanding: usize,
    /// Timed-out requests re-issued by the retry protocol.
    pub retries: Counter,
}

impl Wire for PendingRequest {
    fn encode(&self, w: &mut WireWriter) {
        self.kind.encode(w);
        self.vaddr.encode(w);
        self.addr.encode(w);
        w.i64(self.value);
        w.u32(self.attempt);
        w.u64(self.deadline);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            kind: MsgKind::decode(r)?,
            vaddr: Option::decode(r)?,
            addr: MemAddr::decode(r)?,
            value: r.i64()?,
            attempt: r.u32()?,
            deadline: r.u64()?,
        })
    }
}

impl Wire for PniStats {
    fn encode(&self, w: &mut WireWriter) {
        self.issued.encode(w);
        self.completed.encode(w);
        self.location_conflicts.encode(w);
        w.usize(self.max_outstanding);
        self.retries.encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            issued: Counter::decode(r)?,
            completed: Counter::decode(r)?,
            location_conflicts: Counter::decode(r)?,
            max_outstanding: r.usize()?,
            retries: Counter::decode(r)?,
        })
    }
}

impl Pni {
    /// Creates the interface for `pe`. Request ids are drawn from a
    /// PE-disjoint space so that ids are unique machine-wide.
    #[must_use]
    pub fn new(pe: PeId, hasher: AddressHasher) -> Self {
        Self {
            pe,
            hasher,
            by_location: HashMap::new(),
            inflight: HashMap::new(),
            // Top 20 bits reserved for the PE number: unique across 2^20 PEs
            // and 2^44 requests each.
            next_id: ((pe.0 as u64) << 44) + 1,
            stats: PniStats::default(),
            retry: None,
            pending: HashMap::new(),
            due_scratch: Vec::new(),
        }
    }

    /// Enables the timeout/retry recovery protocol.
    pub fn enable_retry(&mut self, policy: RetryPolicy) {
        self.retry = Some(policy);
    }

    /// Serializes the interface's dynamic state. The translation function
    /// is not written — the machine rebuilds it from its own config and
    /// passes it back to [`Pni::decode_state`].
    pub fn encode_state(&self, w: &mut WireWriter) {
        self.pe.encode(w);
        // `by_location` is the exact inverse of `inflight`; only one side
        // is written.
        self.inflight.encode(w);
        w.u64(self.next_id);
        self.stats.encode(w);
        self.retry.encode(w);
        self.pending.encode(w);
    }

    /// Rebuilds the interface from [`Pni::encode_state`] bytes plus the
    /// translation function in effect at snapshot time.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if the bytes are truncated or malformed.
    pub fn decode_state(r: &mut WireReader<'_>, hasher: AddressHasher) -> Result<Self, WireError> {
        let pe = PeId::decode(r)?;
        let inflight: HashMap<MsgId, MemAddr> = HashMap::decode(r)?;
        let by_location: HashMap<MemAddr, MsgId> =
            inflight.iter().map(|(&id, &addr)| (addr, id)).collect();
        if by_location.len() != inflight.len() {
            return Err(WireError::Invalid("duplicate outstanding location"));
        }
        Ok(Self {
            pe,
            hasher,
            by_location,
            inflight,
            next_id: r.u64()?,
            stats: PniStats::decode(r)?,
            retry: Option::decode(r)?,
            pending: HashMap::decode(r)?,
            due_scratch: Vec::new(),
        })
    }

    /// Replaces the translation function — the machine calls this on every
    /// PNI when a module dies mid-run and translation re-hashes around it.
    /// Outstanding references are re-keyed under the new translation so
    /// their retries reach the adoptive module.
    pub fn set_hasher(&mut self, hasher: AddressHasher) {
        self.hasher = hasher;
        if self.retry.is_none() || self.pending.is_empty() {
            return;
        }
        for state in self.pending.values_mut() {
            if let Some(v) = state.vaddr {
                state.addr = self.hasher.translate(v);
            }
        }
        self.inflight = self.pending.iter().map(|(&id, s)| (id, s.addr)).collect();
        self.by_location = self.pending.iter().map(|(&id, s)| (s.addr, id)).collect();
    }

    /// Collects the requests whose deadline has passed and re-issues each
    /// under its original id with an incremented attempt counter and a
    /// backed-off deadline. Empty unless the retry protocol is enabled.
    /// Deterministic: timed-out requests are returned in id order.
    pub fn due_retries(&mut self, now: Cycle) -> Vec<Message> {
        let mut out = Vec::new();
        self.due_retries_into(now, &mut out);
        out
    }

    /// Allocation-free variant of [`Pni::due_retries`]: appends the re-issued
    /// requests to `out` instead of returning a fresh vector. The common case
    /// (nothing timed out) touches no heap at all.
    pub fn due_retries_into(&mut self, now: Cycle, out: &mut impl Extend<Message>) {
        let Some(policy) = self.retry else {
            return;
        };
        if self.pending.is_empty() {
            return;
        }
        self.due_scratch.clear();
        self.due_scratch.extend(
            self.pending
                .iter()
                .filter(|(_, s)| s.deadline <= now)
                .map(|(&id, _)| id),
        );
        self.due_scratch.sort_unstable();
        for i in 0..self.due_scratch.len() {
            let id = self.due_scratch[i];
            let state = self.pending.get_mut(&id).expect("collected above");
            state.attempt += 1;
            state.deadline = policy.deadline(now, state.attempt);
            self.stats.retries.incr();
            out.extend(core::iter::once(
                Message::request(id, state.kind, state.addr, state.value, self.pe, now)
                    .as_retry(state.attempt, now),
            ));
        }
    }

    /// The earliest deadline among outstanding requests under the retry
    /// protocol — the next cycle at which [`Pni::due_retries`] could
    /// produce anything. `None` when nothing is outstanding (or the retry
    /// protocol is disabled). The idle fast-forward uses this to bound its
    /// jump.
    #[must_use]
    pub fn next_retry_deadline(&self) -> Option<Cycle> {
        self.pending.values().map(|s| s.deadline).min()
    }

    /// Forgets every outstanding request and returns their ids — the
    /// machine calls this when it fail-stops (deconfigures) this PE, so
    /// late replies for its traffic are recognized as orphans rather
    /// than retried forever.
    pub fn abandon_all(&mut self) -> Vec<MsgId> {
        let mut ids: Vec<MsgId> = self.inflight.keys().copied().collect();
        ids.sort_unstable();
        self.inflight.clear();
        self.by_location.clear();
        self.pending.clear();
        ids
    }

    /// The PE this interface serves.
    #[must_use]
    pub fn pe(&self) -> PeId {
        self.pe
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &PniStats {
        &self.stats
    }

    /// Virtual→physical translation (§3.1.4 hashing included).
    #[must_use]
    pub fn translate(&self, vaddr: usize) -> MemAddr {
        self.hasher.translate(vaddr)
    }

    /// Builds a network request for virtual word `vaddr`, enforcing the
    /// pipeline policy.
    ///
    /// # Errors
    ///
    /// [`PniError::LocationBusy`] if a reference to the same location is
    /// already outstanding.
    pub fn issue(
        &mut self,
        kind: MsgKind,
        vaddr: usize,
        value: Value,
        now: Cycle,
    ) -> Result<Message, PniError> {
        let addr = self.translate(vaddr);
        self.issue_at(kind, Some(vaddr), addr, value, now)
    }

    /// Like [`Pni::issue`] but with a pre-translated physical address.
    ///
    /// # Errors
    ///
    /// [`PniError::LocationBusy`] if a reference to the same location is
    /// already outstanding.
    pub fn issue_physical(
        &mut self,
        kind: MsgKind,
        addr: MemAddr,
        value: Value,
        now: Cycle,
    ) -> Result<Message, PniError> {
        self.issue_at(kind, None, addr, value, now)
    }

    fn issue_at(
        &mut self,
        kind: MsgKind,
        vaddr: Option<usize>,
        addr: MemAddr,
        value: Value,
        now: Cycle,
    ) -> Result<Message, PniError> {
        if self.by_location.contains_key(&addr) {
            self.stats.location_conflicts.incr();
            return Err(PniError::LocationBusy);
        }
        let id = MsgId(self.next_id);
        self.next_id += 1;
        self.by_location.insert(addr, id);
        self.inflight.insert(id, addr);
        self.stats.issued.incr();
        self.stats.max_outstanding = self.stats.max_outstanding.max(self.inflight.len());
        if let Some(policy) = self.retry {
            self.pending.insert(
                id,
                PendingRequest {
                    kind,
                    vaddr,
                    addr,
                    value,
                    attempt: 0,
                    deadline: policy.deadline(now, 0),
                },
            );
        }
        Ok(Message::request(id, kind, addr, value, self.pe, now))
    }

    /// Records the arrival of `reply`, freeing its location for new
    /// references. Returns `true` if the reply matched an outstanding
    /// request of this PE.
    pub fn complete(&mut self, reply: &Reply) -> bool {
        match self.inflight.remove(&reply.id) {
            Some(addr) => {
                let removed = self.by_location.remove(&addr);
                debug_assert_eq!(removed, Some(reply.id));
                self.pending.remove(&reply.id);
                self.stats.completed.incr();
                true
            }
            None => false,
        }
    }

    /// Number of requests awaiting replies.
    #[must_use]
    pub fn outstanding(&self) -> usize {
        self.inflight.len()
    }

    /// Whether a reference to virtual word `vaddr` is outstanding.
    #[must_use]
    pub fn is_location_busy(&self, vaddr: usize) -> bool {
        self.by_location.contains_key(&self.translate(vaddr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ultra_mem::TranslationMode;
    use ultra_net::message::ReplyKind;

    fn pni() -> Pni {
        Pni::new(PeId(3), AddressHasher::new(8, TranslationMode::Interleaved))
    }

    #[test]
    fn issues_and_completes() {
        let mut p = pni();
        let m = p.issue(MsgKind::Load, 42, 0, 0).unwrap();
        assert_eq!(m.src, PeId(3));
        assert_eq!(m.addr, p.translate(42));
        assert_eq!(p.outstanding(), 1);
        let r = Reply::to_request(&m, 5);
        assert!(p.complete(&r));
        assert_eq!(p.outstanding(), 0);
        assert!(!p.complete(&r), "double completion rejected");
    }

    #[test]
    fn one_outstanding_per_location() {
        let mut p = pni();
        let m = p.issue(MsgKind::fetch_add(), 42, 1, 0).unwrap();
        assert_eq!(
            p.issue(MsgKind::fetch_add(), 42, 1, 1),
            Err(PniError::LocationBusy)
        );
        assert!(p.is_location_busy(42));
        assert_eq!(p.stats().location_conflicts.get(), 1);
        // A different word in the same MM is fine (pipelining allowed).
        let _ = p.issue(MsgKind::Load, 42 + 8, 0, 1).unwrap();
        assert_eq!(p.outstanding(), 2);
        // After completion the location frees up.
        let r = Reply::to_request(&m, 0);
        p.complete(&r);
        assert!(p.issue(MsgKind::Load, 42, 0, 2).is_ok());
    }

    #[test]
    fn ids_unique_across_pes() {
        let hasher = AddressHasher::new(8, TranslationMode::Interleaved);
        let mut a = Pni::new(PeId(0), hasher.clone());
        let mut b = Pni::new(PeId(1), hasher);
        let ma = a.issue(MsgKind::Load, 1, 0, 0).unwrap();
        let mb = b.issue(MsgKind::Load, 1, 0, 0).unwrap();
        assert_ne!(ma.id, mb.id);
    }

    #[test]
    fn foreign_reply_is_ignored() {
        let mut p = pni();
        let foreign = Reply {
            id: MsgId(999),
            dst: PeId(3),
            addr: MemAddr::new(ultra_sim::MmId(0), 0),
            value: 0,
            kind: ReplyKind::Ack,
            request_issued_at: 0,
            mm_injected_at: 0,
            amalgam: 0,
            attempt: 0,
        };
        assert!(!p.complete(&foreign));
    }

    #[test]
    fn retry_fires_after_deadline_with_same_id() {
        let mut p = pni();
        p.enable_retry(RetryPolicy {
            base_timeout: 10,
            backoff_cap: 3,
        });
        let m = p.issue(MsgKind::fetch_add(), 7, 1, 0).unwrap();
        assert!(p.due_retries(9).is_empty(), "deadline not yet reached");
        let retries = p.due_retries(10);
        assert_eq!(retries.len(), 1);
        assert_eq!(retries[0].id, m.id, "retry reuses the sequence number");
        assert_eq!(retries[0].attempt, 1);
        assert_eq!(retries[0].folded, vec![m.id]);
        assert_eq!(p.stats().retries.get(), 1);
        // Backoff: next deadline is base << 1 after the retry instant.
        assert!(p.due_retries(10 + 19).is_empty());
        let again = p.due_retries(10 + 20);
        assert_eq!(again.len(), 1);
        assert_eq!(again[0].attempt, 2);
    }

    #[test]
    fn completion_cancels_pending_retry() {
        let mut p = pni();
        p.enable_retry(RetryPolicy {
            base_timeout: 5,
            backoff_cap: 3,
        });
        let m = p.issue(MsgKind::Load, 7, 0, 0).unwrap();
        assert!(p.complete(&Reply::to_request(&m, 3)));
        assert!(p.due_retries(1_000).is_empty());
    }

    #[test]
    fn due_retries_are_id_ordered() {
        let mut p = pni();
        p.enable_retry(RetryPolicy {
            base_timeout: 4,
            backoff_cap: 3,
        });
        let ids: Vec<MsgId> = (0..6)
            .map(|i| p.issue(MsgKind::Load, i, 0, 0).unwrap().id)
            .collect();
        let retried: Vec<MsgId> = p.due_retries(100).iter().map(|m| m.id).collect();
        assert_eq!(retried, ids);
    }

    #[test]
    fn set_hasher_rekeys_outstanding_references() {
        let mut p = pni();
        p.enable_retry(RetryPolicy {
            base_timeout: 8,
            backoff_cap: 3,
        });
        let m = p.issue(MsgKind::fetch_add(), 2, 1, 0).unwrap();
        let mut degraded = AddressHasher::new(8, TranslationMode::Interleaved);
        degraded.set_dead_mms(&[ultra_sim::MmId(2)]);
        let new_addr = degraded.translate(2);
        assert_ne!(new_addr, m.addr, "vaddr 2 must re-translate");
        p.set_hasher(degraded);
        let retries = p.due_retries(100);
        assert_eq!(retries[0].addr, new_addr, "retry targets the adoptive MM");
        assert!(p.is_location_busy(2), "busy under the NEW translation");
        // The reply still completes by id even though the address moved.
        let mut late = Reply::to_request(&m, 0);
        late.id = m.id;
        assert!(p.complete(&late));
    }

    #[test]
    fn retry_disabled_means_no_bookkeeping() {
        let mut p = pni();
        let _ = p.issue(MsgKind::Load, 1, 0, 0).unwrap();
        assert!(p.due_retries(u64::MAX - 1).is_empty());
    }

    #[test]
    fn pni_state_round_trips_through_wire() {
        let mut p = pni();
        p.enable_retry(RetryPolicy {
            base_timeout: 10,
            backoff_cap: 3,
        });
        let _ = p.issue(MsgKind::fetch_add(), 7, 1, 0).unwrap();
        let _ = p.issue(MsgKind::Load, 9, 0, 0).unwrap();
        let _ = p.due_retries(10); // leave a retry attempt in flight
        let mut w = WireWriter::new();
        p.encode_state(&mut w);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        let hasher = AddressHasher::new(8, TranslationMode::Interleaved);
        let mut twin = Pni::decode_state(&mut r, hasher).expect("decode");
        assert!(r.is_empty());
        assert_eq!(twin.outstanding(), p.outstanding());
        assert_eq!(twin.next_retry_deadline(), p.next_retry_deadline());
        // Future retries and id allocation continue identically.
        assert_eq!(p.due_retries(1_000), twin.due_retries(1_000));
        let ma = p.issue(MsgKind::Load, 100, 0, 0).unwrap();
        let mb = twin.issue(MsgKind::Load, 100, 0, 0).unwrap();
        assert_eq!(ma.id, mb.id);
        // Truncated bytes error cleanly at every cut.
        for cut in 0..bytes.len() {
            let mut r = WireReader::new(&bytes[..cut]);
            let h = AddressHasher::new(8, TranslationMode::Interleaved);
            assert!(Pni::decode_state(&mut r, h).is_err());
        }
    }

    #[test]
    fn max_outstanding_tracked() {
        let mut p = pni();
        for i in 0..5 {
            let _ = p.issue(MsgKind::Load, i, 0, 0).unwrap();
        }
        assert_eq!(p.stats().max_outstanding, 5);
    }
}

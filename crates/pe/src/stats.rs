//! Per-PE execution accounting — the raw material of the paper's Table 1.
//!
//! Table 1 reports, per program: average central-memory access time, the
//! percentage of idle cycles, idle cycles per central-memory load, memory
//! references per instruction, and shared references per instruction. All
//! of those derive from the counters kept here.

use ultra_sim::wire::{Wire, WireError, WireReader, WireWriter};
use ultra_sim::{Counter, Cycle, Histogram};

/// Counters for one PE's run.
#[derive(Debug, Clone, Default)]
pub struct PeStats {
    /// Instructions executed (compute, private-reference and issue slots).
    pub instructions: Counter,
    /// Cycles spent stalled waiting for a central-memory reply.
    pub idle_cycles: Counter,
    /// References satisfied by the local cache / private memory.
    pub private_refs: Counter,
    /// References sent to central memory (shared data).
    pub shared_refs: Counter,
    /// Loads (and fetch-and-phis) from central memory, for the
    /// idle-per-load column.
    pub cm_loads: Counter,
    /// Round-trip central-memory access times, in network cycles.
    pub cm_access: Histogram,
    /// Total cycles this PE was alive.
    pub total_cycles: Cycle,
    /// Of the idle cycles, those spent waiting at barriers — Table 2's
    /// `W(P,N)` as opposed to Table 1's memory-latency idling.
    pub barrier_wait_cycles: Counter,
}

impl Wire for PeStats {
    fn encode(&self, w: &mut WireWriter) {
        self.instructions.encode(w);
        self.idle_cycles.encode(w);
        self.private_refs.encode(w);
        self.shared_refs.encode(w);
        self.cm_loads.encode(w);
        self.cm_access.encode(w);
        w.u64(self.total_cycles);
        self.barrier_wait_cycles.encode(w);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            instructions: Counter::decode(r)?,
            idle_cycles: Counter::decode(r)?,
            private_refs: Counter::decode(r)?,
            shared_refs: Counter::decode(r)?,
            cm_loads: Counter::decode(r)?,
            cm_access: Histogram::decode(r)?,
            total_cycles: r.u64()?,
            barrier_wait_cycles: Counter::decode(r)?,
        })
    }
}

impl PeStats {
    /// Creates zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Merges another PE's counters into this one (whole-machine totals).
    pub fn merge(&mut self, other: &PeStats) {
        self.instructions.add(other.instructions.get());
        self.idle_cycles.add(other.idle_cycles.get());
        self.private_refs.add(other.private_refs.get());
        self.shared_refs.add(other.shared_refs.get());
        self.cm_loads.add(other.cm_loads.get());
        self.cm_access.merge(&other.cm_access);
        self.total_cycles += other.total_cycles;
        self.barrier_wait_cycles
            .add(other.barrier_wait_cycles.get());
    }

    /// Idle cycles excluding barrier waits — pure memory-latency stalls.
    #[must_use]
    pub fn memory_idle_cycles(&self) -> u64 {
        self.idle_cycles
            .get()
            .saturating_sub(self.barrier_wait_cycles.get())
    }

    /// Fraction of cycles spent idle (Table 1 "idle cycles" column).
    #[must_use]
    pub fn idle_fraction(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.idle_cycles.get() as f64 / self.total_cycles as f64
        }
    }

    /// Idle cycles per central-memory load (Table 1 column 3). Reported in
    /// the caller's preferred time unit by dividing externally.
    #[must_use]
    pub fn idle_per_cm_load(&self) -> f64 {
        let loads = self.cm_loads.get();
        if loads == 0 {
            0.0
        } else {
            self.idle_cycles.get() as f64 / loads as f64
        }
    }

    /// Memory references (shared + private) per instruction.
    #[must_use]
    pub fn mem_refs_per_instruction(&self) -> f64 {
        let instr = self.instructions.get();
        if instr == 0 {
            0.0
        } else {
            (self.shared_refs.get() + self.private_refs.get()) as f64 / instr as f64
        }
    }

    /// Shared (central-memory) references per instruction.
    #[must_use]
    pub fn shared_refs_per_instruction(&self) -> f64 {
        let instr = self.instructions.get();
        if instr == 0 {
            0.0
        } else {
            self.shared_refs.get() as f64 / instr as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_from_counters() {
        let mut s = PeStats::new();
        s.instructions.add(100);
        s.idle_cycles.add(40);
        s.total_cycles = 200;
        s.shared_refs.add(8);
        s.private_refs.add(12);
        s.cm_loads.add(8);
        assert!((s.idle_fraction() - 0.2).abs() < 1e-12);
        assert!((s.idle_per_cm_load() - 5.0).abs() < 1e-12);
        assert!((s.mem_refs_per_instruction() - 0.2).abs() < 1e-12);
        assert!((s.shared_refs_per_instruction() - 0.08).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = PeStats::new();
        assert_eq!(s.idle_fraction(), 0.0);
        assert_eq!(s.idle_per_cm_load(), 0.0);
        assert_eq!(s.mem_refs_per_instruction(), 0.0);
    }

    #[test]
    fn merge_sums() {
        let mut a = PeStats::new();
        let mut b = PeStats::new();
        a.instructions.add(10);
        b.instructions.add(20);
        a.cm_access.record(16);
        b.cm_access.record(18);
        a.merge(&b);
        assert_eq!(a.instructions.get(), 30);
        assert_eq!(a.cm_access.count(), 2);
        assert!((a.cm_access.mean() - 17.0).abs() < 1e-12);
    }
}

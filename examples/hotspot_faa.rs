//! The headline property (§3.1.2): any number of simultaneous references
//! to one memory cell are satisfied in the time of one access — versus
//! what happens when combining is switched off.
//!
//! All PEs hammer a single shared fetch-and-add word in lock-step rounds;
//! the run is repeated with combining disabled.
//!
//! ```text
//! cargo run --release -p ultracomputer --example hotspot_faa
//! ```

use ultracomputer::machine::MachineBuilder;
use ultracomputer::program::{body, Expr, Op, Program};
use ultracomputer::report::MachineReport;
use ultracomputer::ultra_net::config::{NetConfig, SwitchPolicy};

fn hot_program(rounds: i64) -> Program {
    Program::new(
        body(vec![
            Op::For {
                reg: 1,
                from: Expr::Const(0),
                to: Expr::Const(rounds),
                body: body(vec![
                    Op::FetchAdd {
                        addr: Expr::Const(0),
                        delta: Expr::Const(1),
                        dst: Some(0),
                    },
                    // Touch the ticket so the fetch is a real dependence.
                    Op::Set {
                        reg: 2,
                        value: Expr::add(Expr::Reg(0), Expr::Reg(2)),
                    },
                ]),
            },
            Op::Halt,
        ]),
        vec![],
    )
}

fn main() {
    let n: usize = 64;
    let rounds: i64 = 40;
    let program = hot_program(rounds);
    println!(
        "{} PEs x {} rounds of F&A on ONE shared word ({} updates total)\n",
        n,
        rounds,
        n as i64 * rounds
    );
    for (label, policy) in [
        ("combining on ", SwitchPolicy::QueuedCombining),
        ("combining off", SwitchPolicy::QueuedNoCombine),
    ] {
        let mut cfg = NetConfig::small(n);
        cfg.policy = policy;
        let mut machine = MachineBuilder::new(n).net(cfg).build_spmd(&program);
        let outcome = machine.run();
        assert!(outcome.completed);
        assert_eq!(machine.read_shared(0), n as i64 * rounds);
        let report = MachineReport::from_machine(&machine);
        println!(
            "{label}: {:>7} cycles | mean CM access {:>6.1} instr | {} combines",
            outcome.cycles,
            report.avg_cm_access_instr(),
            report.net.combines
        );
    }
    println!(
        "\nBoth runs compute the same final counter (serialization principle),\n\
         but without combining the hot module serializes all {} updates.",
        n as i64 * rounds
    );
}

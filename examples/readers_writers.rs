//! The §2.3 readers–writers coordination, two ways:
//!
//! 1. on real threads ([`ultra_algorithms::FaaRwLock`]) — readers
//!    announce themselves with a single fetch-and-add, no critical
//!    section on the read path;
//! 2. as an exhaustively interleaved simulation
//!    ([`ultra_algorithms::InterleavedRwSim`]) — demonstrating that no
//!    interleaving of the one-memory-op steps produces a torn read or a
//!    writer overlap.
//!
//! ```text
//! cargo run --release -p ultracomputer --example readers_writers
//! ```

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use ultra_algorithms::{FaaRwLock, InterleavedRwSim};

fn main() {
    // --- native threads ---
    let lock = Arc::new(FaaRwLock::new());
    let cell = Arc::new(AtomicI64::new(0));
    let mut handles = Vec::new();
    for _ in 0..2 {
        let lock = Arc::clone(&lock);
        let cell = Arc::clone(&cell);
        handles.push(std::thread::spawn(move || {
            for _ in 0..2_000 {
                lock.write(|| {
                    let v = cell.load(Ordering::SeqCst);
                    cell.store(v + 1, Ordering::SeqCst);
                    cell.store(v + 2, Ordering::SeqCst);
                });
            }
        }));
    }
    for _ in 0..4 {
        let lock = Arc::clone(&lock);
        let cell = Arc::clone(&cell);
        handles.push(std::thread::spawn(move || {
            for _ in 0..4_000 {
                lock.read(|| {
                    if cell.load(Ordering::SeqCst) % 2 != 0 {
                        panic!("reader caught a writer mid-update");
                    }
                });
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    println!(
        "native: 4,000 writer sections + 16,000 reader sections, value = {} (exact), zero torn reads",
        cell.load(Ordering::SeqCst)
    );

    // --- interleaved simulation ---
    let mut total_steps = 0;
    for seed in 0..200 {
        let mut sim = InterleavedRwSim::new(seed);
        for i in 0..6 {
            sim.spawn_reader(i);
        }
        for v in 1..4 {
            sim.spawn_writer(v * 7);
        }
        let r = sim.run(1_000_000);
        assert_eq!(r.torn_reads, 0);
        assert_eq!(r.exclusion_violations, 0);
        total_steps += r.steps;
    }
    println!(
        "simulated: 200 random interleavings ({total_steps} one-memory-op steps), \
         zero torn reads, zero writer overlaps"
    );
    println!(
        "\nThe read path is two fetch-and-adds and zero critical sections — on\n\
         Ultracomputer hardware, any number of simultaneous reader arrivals\n\
         combine into one memory transaction."
    );
}

//! Quickstart: build an Ultracomputer, run the paper's §2.2 idiom on it.
//!
//! Sixteen PEs simultaneously fetch-and-add a shared counter; each uses
//! its ticket to claim a distinct array slot. On the combining network
//! the sixteen simultaneous fetch-and-adds merge on their way to memory.
//!
//! ```text
//! cargo run --release -p ultracomputer --example quickstart
//! ```

use ultracomputer::machine::MachineBuilder;
use ultracomputer::program::{body, Expr, Op, Program};
use ultracomputer::report::MachineReport;

fn main() {
    // Every PE: ticket = F&A(counter, 1); slots[ticket] = my PE number.
    let program = Program::new(
        body(vec![
            Op::FetchAdd {
                addr: Expr::Const(0),
                delta: Expr::Const(1),
                dst: Some(0),
            },
            Op::Store {
                addr: Expr::add(Expr::Const(100), Expr::Reg(0)),
                value: Expr::PeIndex,
            },
            Op::Halt,
        ]),
        vec![],
    );

    let n = 16;
    let mut machine = MachineBuilder::new(n).build_spmd(&program);
    let outcome = machine.run();
    assert!(outcome.completed);

    println!("ran {} PEs for {} cycles\n", n, outcome.cycles);
    println!("shared counter ended at {}", machine.read_shared(0));
    print!("slot owners:");
    for i in 0..n {
        print!(" {}", machine.read_shared(100 + i));
    }
    println!("\n(each PE claimed exactly one distinct slot)\n");

    let report = MachineReport::from_machine(&machine);
    println!("{report}");
    println!(
        "\n{} of the {} fetch-and-adds were absorbed by combining switches.",
        report.net.combines, report.net.injected_requests
    );
}

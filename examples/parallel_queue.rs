//! The appendix's critical-section-free queue on real threads.
//!
//! Producers and consumers share one bounded FIFO whose coordination is
//! pure fetch-and-add (slot claims, occupancy bounds); per the appendix,
//! "when a queue is neither full nor empty our program allows many
//! insertions and many deletions to proceed completely in parallel with
//! no serial code executed."
//!
//! ```text
//! cargo run --release -p ultracomputer --example parallel_queue
//! ```

use std::sync::Arc;
use std::time::Instant;
use ultra_algorithms::UltraQueue;

fn main() {
    let queue = Arc::new(UltraQueue::new(256));
    let producers = 4;
    let consumers = 4;
    let per_producer = 50_000i64;

    let start = Instant::now();
    let mut handles = Vec::new();
    for p in 0..producers {
        let q = Arc::clone(&queue);
        handles.push(std::thread::spawn(move || {
            for i in 0..per_producer {
                q.enqueue(p * per_producer + i);
            }
        }));
    }
    let takers: Vec<_> = (0..consumers)
        .map(|_| {
            let q = Arc::clone(&queue);
            std::thread::spawn(move || {
                let mut sum = 0i64;
                let mut count = 0i64;
                loop {
                    let v = q.dequeue();
                    if v < 0 {
                        break;
                    }
                    sum += v;
                    count += 1;
                }
                (sum, count)
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    for _ in 0..consumers {
        queue.enqueue(-1); // poison
    }
    let (mut sum, mut count) = (0i64, 0i64);
    for t in takers {
        let (s, c) = t.join().unwrap();
        sum += s;
        count += c;
    }
    let elapsed = start.elapsed();

    let total = producers * per_producer;
    assert_eq!(count, total, "every item delivered exactly once");
    assert_eq!(sum, total * (total - 1) / 2, "and none were corrupted");
    println!(
        "{} items through a 256-slot queue, {} producers / {} consumers",
        total, producers, consumers
    );
    println!(
        "{:.2} Mops in {:.2?} ({:.2} Mops/s), zero items lost or duplicated",
        2.0 * total as f64 / 1e6,
        elapsed,
        2.0 * total as f64 / elapsed.as_secs_f64() / 1e6
    );
}

//! Explore network configurations with the §4.1 analytic model — the
//! trade study behind Figure 7 and the duplexed-4×4 recommendation.
//!
//! ```text
//! cargo run --release -p ultracomputer --example network_explorer
//! ```

use ultra_analysis::packaging::PackagingModel;
use ultra_analysis::queueing::NetworkModel;

fn main() {
    let n = 4096;
    println!("configuration study for a {n}-PE machine (B = k/m = 1)\n");
    println!(
        "{:>4} {:>4} {:>7} {:>9} {:>9} {:>10} {:>12} {:>12}",
        "k", "d", "stages", "capacity", "cost C", "T(p=0)", "T(p=0.10)", "T(p=0.20)"
    );
    for k in [2usize, 4, 8] {
        for d in [1usize, 2, 3, 6] {
            let m = NetworkModel::with_unit_bandwidth(n, k, d);
            let fmt = |p: f64| match m.transit_time(p) {
                Some(t) => format!("{t:.2}"),
                None => "saturated".to_string(),
            };
            println!(
                "{:>4} {:>4} {:>7} {:>9.3} {:>9.3} {:>10.2} {:>12} {:>12}",
                k,
                d,
                m.stages(),
                m.capacity(),
                m.cost_factor(),
                m.min_transit(),
                fmt(0.10),
                fmt(0.20)
            );
        }
    }

    println!("\nequal-cost comparison the paper highlights (C = 0.25):");
    let a = NetworkModel::with_unit_bandwidth(n, 4, 2);
    let b = NetworkModel::with_unit_bandwidth(n, 8, 6);
    for p in [0.05, 0.15, 0.25, 0.35, 0.45] {
        let ta = a
            .transit_time(p)
            .map_or("saturated".into(), |t| format!("{t:.2}"));
        let tb = b
            .transit_time(p)
            .map_or("saturated".into(), |t| format!("{t:.2}"));
        println!("  p = {p:.2}:  4x4 duplexed {ta:>10}   8x8 six-fold {tb:>10}");
    }

    println!("\nand what the winner costs to build (§3.6):");
    let r = PackagingModel::paper_4096().report();
    println!(
        "  {} chips total ({:.1}% network), {} PE boards + {} MM boards",
        r.total_chips,
        100.0 * r.network_fraction,
        r.boards_per_side,
        r.boards_per_side
    );
}

//! The appendix's motivating application, run for real: parallel
//! shortest paths over a shared work queue.
//!
//! Deo, Pang & Lord ("Two Parallel Algorithms for Shortest Path
//! Problems") predicted: "regardless of the number of processors used …
//! algorithm PPDM has a constant upper bound on its speedup, because
//! every processor demands private use of the Q." The appendix refutes
//! this with the critical-section-free fetch-and-add queue. Here workers
//! run a label-correcting single-source shortest-path over a random graph
//! with the frontier in an [`ultra_algorithms::UltraQueue`]; distances
//! relax via atomic `fetch_min`-style updates. The result is checked
//! against sequential Dijkstra.
//!
//! ```text
//! cargo run --release -p ultracomputer --example shortest_path
//! ```

use std::sync::atomic::{AtomicI64, AtomicUsize, Ordering};
use std::sync::Arc;
use ultra_algorithms::UltraQueue;
use ultra_sim::{Rng, SplitMix64};

const INF: i64 = i64::MAX / 4;

struct Graph {
    /// adjacency: node -> (neighbour, weight)
    edges: Vec<Vec<(usize, i64)>>,
}

fn random_graph(nodes: usize, degree: usize, seed: u64) -> Graph {
    let mut rng = SplitMix64::new(seed);
    let mut edges = vec![Vec::new(); nodes];
    // A ring for connectivity plus random chords.
    for (u, adj) in edges.iter_mut().enumerate() {
        adj.push(((u + 1) % nodes, 1 + rng.below(20) as i64));
        for _ in 0..degree {
            let v = rng.below(nodes);
            if v != u {
                adj.push((v, 1 + rng.below(100) as i64));
            }
        }
    }
    Graph { edges }
}

fn dijkstra(g: &Graph, src: usize) -> Vec<i64> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut dist = vec![INF; g.edges.len()];
    dist[src] = 0;
    let mut heap = BinaryHeap::new();
    heap.push(Reverse((0i64, src)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u] {
            continue;
        }
        for &(v, w) in &g.edges[u] {
            if d + w < dist[v] {
                dist[v] = d + w;
                heap.push(Reverse((d + w, v)));
            }
        }
    }
    dist
}

/// Label-correcting SSSP: workers pull nodes from the shared queue, relax
/// their edges, and enqueue improved neighbours. No critical section
/// anywhere: the queue is fetch-and-add coordinated, distances are atomic
/// min-updates, and termination uses a shared in-flight counter.
fn parallel_sssp(g: &Graph, src: usize, workers: usize) -> (Vec<i64>, usize) {
    let dist: Vec<AtomicI64> = (0..g.edges.len()).map(|_| AtomicI64::new(INF)).collect();
    dist[src].store(0, Ordering::SeqCst);
    let queue = Arc::new(UltraQueue::new(16 * g.edges.len()));
    // Items in the queue or being processed; 0 = done.
    let in_flight = Arc::new(AtomicUsize::new(1));
    let relaxations = Arc::new(AtomicUsize::new(0));
    queue.enqueue(src as i64);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let queue = Arc::clone(&queue);
            let in_flight = Arc::clone(&in_flight);
            let relaxations = Arc::clone(&relaxations);
            let dist = &dist;
            scope.spawn(move || loop {
                let Some(u) = queue.try_dequeue() else {
                    if in_flight.load(Ordering::SeqCst) == 0 {
                        return;
                    }
                    std::thread::yield_now();
                    continue;
                };
                let u = u as usize;
                let du = dist[u].load(Ordering::SeqCst);
                for &(v, w) in &g.edges[u] {
                    let candidate = du + w;
                    // Atomic min via fetch_min (a fetch-and-phi! §2.4).
                    let prev = dist[v].fetch_min(candidate, Ordering::SeqCst);
                    if candidate < prev {
                        relaxations.fetch_add(1, Ordering::SeqCst);
                        in_flight.fetch_add(1, Ordering::SeqCst);
                        queue.enqueue(v as i64);
                    }
                }
                in_flight.fetch_sub(1, Ordering::SeqCst);
            });
        }
    });
    (
        dist.iter().map(|d| d.load(Ordering::SeqCst)).collect(),
        relaxations.load(Ordering::SeqCst),
    )
}

fn main() {
    let nodes = 3_000;
    let g = random_graph(nodes, 4, 0xBEEF);
    let reference = dijkstra(&g, 0);

    println!(
        "single-source shortest paths, {nodes} nodes, ~{} edges",
        g.edges.iter().map(Vec::len).sum::<usize>()
    );
    for workers in [1usize, 2, 4, 8] {
        let start = std::time::Instant::now();
        let (dist, relaxations) = parallel_sssp(&g, 0, workers);
        let elapsed = start.elapsed();
        assert_eq!(dist, reference, "parallel SSSP diverged from Dijkstra");
        println!(
            "  {workers} workers: {elapsed:>10.2?}  ({relaxations} relaxations, result exact)"
        );
    }
    println!(
        "\nDeo, Pang & Lord: \"every processor demands private use of the Q\"\n\
         — but this Q is the appendix's fetch-and-add queue: no worker ever\n\
         executed a critical section, and the answers match Dijkstra exactly."
    );
}

//! A slice of the paper's §5 study: simulate parallel TRED2 for a few
//! (P, N) pairs, fit `T(P,N) = aN + bN³/P + W(P,N)`, and print the
//! efficiencies the fit predicts.
//!
//! ```text
//! cargo run --release -p ultracomputer --example tred2_efficiency
//! ```

use ultra_workloads::efficiency::{measure_tred2, EfficiencyModel, Measurement};

fn main() {
    let pairs = [
        (4usize, 16usize),
        (4, 24),
        (8, 16),
        (8, 32),
        (16, 32),
        (16, 48),
    ];
    println!("simulating TRED2 on the paracomputer backend:");
    let measurements: Vec<Measurement> = pairs
        .iter()
        .map(|&(p, n)| {
            let m = measure_tred2(p, n, 1);
            println!(
                "  P={:<3} N={:<3}  T = {:>8.0} instr,  waiting W = {:>7.0} instr",
                p, n, m.t, m.w
            );
            m
        })
        .collect();

    let model = EfficiencyModel::fit(&measurements);
    println!(
        "\nfit:  T(P,N) = {:.1}·N + {:.2}·N³/P + ({:.1}·N + {:.1}·√P)",
        model.a, model.b, model.w_n, model.w_sqrt_p
    );

    println!("\npredicted efficiencies E(P,N) = T(1,N)/(P·T(P,N)):");
    println!(
        "{:>8} {:>8} {:>10} {:>14}",
        "P", "N", "with wait", "wait recovered"
    );
    for (p, n) in [(16, 64), (64, 64), (64, 256), (256, 256), (1024, 1024)] {
        println!(
            "{:>8} {:>8} {:>9.0}% {:>13.0}%",
            p,
            n,
            100.0 * model.efficiency(p, n),
            100.0 * model.efficiency_no_wait(p, n)
        );
    }
    println!("\n(the paper's rule of thumb: big machines need big problems — the\n efficiency diagonal is visible above)");
}

#!/usr/bin/env bash
# Regenerates every table and figure of the paper into results/.
# Usage: ./repro.sh
set -euo pipefail
cd "$(dirname "$0")"
mkdir -p results
for bin in packaging fig7 table1 table2 table3 hotspot queue_depth bandwidth multiprog speedup native_queue; do
    echo "== $bin =="
    cargo run --release -q -p ultra-bench --bin "$bin" | tee "results/$bin.txt"
    echo
done
echo "All experiment outputs written to results/."

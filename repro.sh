#!/usr/bin/env bash
# Regenerates every table and figure of the paper into results/.
# Usage: ./repro.sh
set -euo pipefail
cd "$(dirname "$0")"
mkdir -p results
for bin in packaging fig7 table1 table2 table3 hotspot queue_depth bandwidth multiprog speedup native_queue; do
    echo "== $bin =="
    cargo run --release -q -p ultra-bench --bin "$bin" | tee "results/$bin.txt"
    echo
done

echo "== serving =="
# E15: the open-loop serving tier — load vs tail latency, plus the
# deterministic curve artifact.
cargo run --release -q -p ultra-bench --bin serving -- --out results/serving-curve.json \
    | tee results/serving.txt
echo

echo "== ultra-serve =="
# Three-job batch: `warm` and `resume` share a sweep prefix (same machine,
# seed and workload; only the cycle budget differs), so `resume` must pick
# up `warm`'s final checkpoint from the snapshot cache instead of
# re-simulating the first 600 cycles.
cat > results/serve_batch.ndjson <<'EOF'
{"id": "warm", "pes": 8, "seed": 11, "workload": "ticket", "rounds": 40, "cycles": 600, "checkpoint_every": 512, "priority": 10}
{"id": "resume", "pes": 8, "seed": 11, "workload": "ticket", "rounds": 40, "cycles": 200000, "checkpoint_every": 512}
{"id": "other", "pes": 16, "seed": 3, "workload": "barrier", "rounds": 4}
EOF
cargo run --release -q -p ultra-serve -- --batch results/serve_batch.ndjson --workers 1 \
    --metrics-out results/serve_metrics.json --trace-out results/serve_trace.json \
    > results/serve_results.ndjson 2> results/serve_log.txt
cat results/serve_results.ndjson
grep -q 'cache hit: job `resume` resumed from cycle' results/serve_log.txt \
    || { echo "ERROR: the resume job did not hit the snapshot cache"; exit 1; }
python3 -m json.tool results/serve_metrics.json > /dev/null \
    || { echo "ERROR: serve_metrics.json is not valid JSON"; exit 1; }
python3 -m json.tool results/serve_trace.json > /dev/null \
    || { echo "ERROR: serve_trace.json is not valid JSON"; exit 1; }
echo "serve smoke OK: $(grep -c '^' results/serve_results.ndjson) results, prefix-cache hit confirmed"
echo

echo "All experiment outputs written to results/."
